package oracle

import (
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/xrand"
)

func TestULPDiff32(t *testing.T) {
	cases := []struct {
		a, b float32
		want int64
	}{
		{1, 1, 0},
		{0, float32(math.Copysign(0, -1)), 0},
		{1, math.Nextafter32(1, 2), 1},
		{1, math.Nextafter32(1, 0), 1},
		{-1, math.Nextafter32(-1, -2), 1},
		{float32(math.NaN()), 1, math.MaxInt64},
		{1, float32(math.NaN()), math.MaxInt64},
	}
	for _, c := range cases {
		if got := ULPDiff32(c.a, c.b); got != c.want {
			t.Errorf("ULPDiff32(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Crossing the sign boundary: −ε to +ε is two subnormal steps.
	eps := math.Float32frombits(1) // smallest positive subnormal
	if got := ULPDiff32(-eps, eps); got != 2 {
		t.Errorf("ULPDiff32(-min, +min) = %d, want 2", got)
	}
}

func TestToleranceContains(t *testing.T) {
	tol := Tolerance{Abs: 1e-6, Rel: 1e-5, ULP: 4}
	cases := []struct {
		name      string
		got, want float32
		ok        bool
	}{
		{"exact", 3.5, 3.5, true},
		{"abs floor near zero", 5e-7, 0, true},
		{"rel on large values", 1000, 1000.005, true},
		{"ulp tie", 1, math.Nextafter32(1, 2), true},
		{"clearly off", 1, 1.1, false},
		{"nan never agrees", float32(math.NaN()), float32(math.NaN()), false},
	}
	for _, c := range cases {
		if got := tol.Contains(c.got, c.want); got != c.ok {
			t.Errorf("%s: Contains(%v, %v) = %v, want %v", c.name, c.got, c.want, got, c.ok)
		}
	}
	// Zero-valued tolerance accepts only bitwise equality.
	strict := Tolerance{}
	if !strict.Contains(2, 2) || strict.Contains(2, math.Nextafter32(2, 3)) {
		t.Error("zero tolerance must mean bitwise equality")
	}
}

func TestCompareReportsWorstDivergence(t *testing.T) {
	want := dense.FromRows([][]float32{{1, 2}, {3, 4}})
	got := dense.FromRows([][]float32{{1, 2.001}, {3, 8}})
	d := Compare(got, want, Default())
	if d == nil {
		t.Fatal("expected a divergence")
	}
	if d.Row != 1 || d.Col != 1 {
		t.Fatalf("worst divergence at (%d,%d), want (1,1)", d.Row, d.Col)
	}
	if d.Got != 8 || d.Want != 4 {
		t.Fatalf("divergence values %v/%v, want 8/4", d.Got, d.Want)
	}
	if d.Error() == "" {
		t.Fatal("empty error string")
	}
	if Compare(want, want.Clone(), Tolerance{}) != nil {
		t.Fatal("identical matrices must not diverge")
	}
}

func TestCompareVec(t *testing.T) {
	if d := CompareVec([]float32{1, 2}, []float32{1, 2}, Tolerance{}); d != nil {
		t.Fatalf("unexpected divergence %v", d)
	}
	d := CompareVec([]float32{1, 9}, []float32{1, 2}, Default())
	if d == nil || d.Row != 1 || d.Col != -1 {
		t.Fatalf("divergence = %+v, want row 1 col -1", d)
	}
}

func TestGeneratorsProduceValidDeterministicMatrices(t *testing.T) {
	for _, g := range Generators() {
		for _, n := range []int{1, 8, 33} {
			a := g.Gen(n, 7)
			if a.Rows != n || a.Cols != n {
				t.Fatalf("%s(n=%d): shape %d×%d", g.Name, n, a.Rows, a.Cols)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("%s(n=%d): invalid matrix: %v", g.Name, n, err)
			}
			if !a.IsBinary() {
				t.Fatalf("%s(n=%d): not binary", g.Name, n)
			}
			again := g.Gen(n, 7)
			if again.NNZ() != a.NNZ() {
				t.Fatalf("%s(n=%d): not deterministic (%d vs %d nnz)", g.Name, n, a.NNZ(), again.NNZ())
			}
			for k := range a.ColIdx {
				if a.ColIdx[k] != again.ColIdx[k] {
					t.Fatalf("%s(n=%d): not deterministic at nz %d", g.Name, n, k)
				}
			}
		}
	}
	if _, err := GetGenerator("nope"); err == nil {
		t.Fatal("GetGenerator must reject unknown names")
	}
	if g, err := GetGenerator("hub"); err != nil || g.Name != "hub" {
		t.Fatalf("GetGenerator(hub) = %v, %v", g.Name, err)
	}
}

func TestGeneratorShapesAreAdversarial(t *testing.T) {
	n := 64
	empty := genEmptyRows(n, 3)
	zeroRows := 0
	for i := 0; i < n; i++ {
		if empty.RowNNZ(i) == 0 {
			zeroRows++
		}
	}
	if zeroRows == 0 {
		t.Error("emptyrows produced no empty rows")
	}
	hub := genHub(n, 3)
	if hub.RowNNZ(0) != n {
		t.Errorf("hub row has %d entries, want %d", hub.RowNNZ(0), n)
	}
	if z := genAllZero(n, 3); z.NNZ() != 0 {
		t.Errorf("allzero has %d nonzeros", z.NNZ())
	}
	dup := genDupRows(n, 3)
	exactDups := 0
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			a, b := dup.RowCols(i), dup.RowCols(j)
			if len(a) != len(b) {
				continue
			}
			same := true
			for k := range a {
				if a[k] != b[k] {
					same = false
					break
				}
			}
			if same {
				exactDups++
				break
			}
		}
	}
	if exactDups == 0 {
		t.Error("duprows produced no duplicate rows")
	}
}

// The two independent oracles must agree with each other bitwise (both
// accumulate the same nonzeros in the same order in float64) and with
// the production SpMM kernel within the paper's tolerance.
func TestReferenceOraclesAgree(t *testing.T) {
	rng := xrand.New(11)
	for _, g := range Generators() {
		a := g.Gen(40, 5)
		b := dense.New(40, 9)
		rng.FillUniform(b.Data)
		d := DenseProduct(a, b)
		c := CSRProduct(a, b)
		if !d.Equal(c) {
			t.Fatalf("%s: dense and CSR oracles disagree: %v", g.Name, Compare(d, c, Tolerance{}))
		}
		if div := Compare(kernels.SpMM(a, b), c, Default()); div != nil {
			t.Fatalf("%s: production SpMM diverges from oracle: %v", g.Name, div)
		}
		v := make([]float32, 40)
		rng.FillUniform(v)
		if div := CompareVec(kernels.SpMV(a, v), CSRMatVec(a, v), Default()); div != nil {
			t.Fatalf("%s: production SpMV diverges from oracle: %v", g.Name, div)
		}
	}
}
