// Concurrency stress harness: hammers the parallel kernels and the
// parallel runtime primitives with randomized thread counts and grain
// sizes while several multiplications run concurrently against the
// same (shared, read-only) compressed matrix. Results are compared
// bitwise against precomputed sequential references, so both data
// races (surfaced by `go test -race`) and scheduling-dependent
// nondeterminism are caught. The harness itself uses only its local
// RNG and is deterministic for a fixed seed.

package oracle

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cbm"
	"repro/internal/dense"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// StressConfig controls a stress run.
type StressConfig struct {
	Iters      int    // randomized rounds; < 1 selects 8
	Seed       uint64 // RNG seed for thread counts / grain sizes
	MaxThreads int    // upper bound on randomized thread counts; < 2 selects 16
}

func (c StressConfig) normalized() StressConfig {
	if c.Iters < 1 {
		c.Iters = 8
	}
	if c.MaxThreads < 2 {
		c.MaxThreads = 16
	}
	return c
}

// StressMatrix runs cfg.Iters rounds in which MulParallel,
// MulToStrategy(StrategyBranchColumn), MulToStrategy(StrategyFused) and
// MulVecParallel execute concurrently on m with independently
// randomized thread counts and column-block widths, each checked
// bitwise against the sequential result of its own plan family: the
// tree plans against forced two-stage, the auto MulParallel against
// whatever plan the selector names for that thread count (the CSR plan
// is only loose-equivalent to the tree plans, so it gets its own
// sequential reference). The first discrepancy is returned.
func StressMatrix(m *cbm.Matrix, b *dense.Matrix, v []float32, cfg StressConfig) error {
	cfg = cfg.normalized()
	rng := xrand.New(cfg.Seed)
	wantC := dense.New(m.Rows(), b.Cols)
	m.MulToStrategy(wantC, b, 1, cbm.StrategyBranch, 0)
	var csrWant *dense.Matrix
	if m.HasCSRPlan() {
		csrWant = dense.New(m.Rows(), b.Cols)
		m.MulToStrategy(csrWant, b, 1, cbm.StrategyCSR, 0)
	}
	wantY := m.MulVec(v)
	for it := 0; it < cfg.Iters; it++ {
		t1 := 2 + rng.Intn(cfg.MaxThreads-1)
		t2 := 2 + rng.Intn(cfg.MaxThreads-1)
		t3 := 2 + rng.Intn(cfg.MaxThreads-1)
		t4 := 2 + rng.Intn(cfg.MaxThreads-1)
		blk := 1 + rng.Intn(b.Cols+8)
		var e1, e2, e3, e4 error
		parallel.Do(
			func() {
				ref := wantC
				if plan := m.PlanFor(t1, b.Cols); plan == cbm.StrategyCSR {
					ref = csrWant
				}
				if ref == nil {
					e1 = fmt.Errorf("MulParallel(threads=%d): selector picked the CSR plan but it is unavailable", t1)
					return
				}
				if got := m.MulParallel(b, t1); !got.Equal(ref) {
					e1 = fmt.Errorf("MulParallel(threads=%d): %w", t1, Compare(got, ref, Tolerance{}))
				}
			},
			func() {
				got := dense.New(m.Rows(), b.Cols)
				m.MulToStrategy(got, b, t2, cbm.StrategyBranchColumn, blk)
				if !got.Equal(wantC) {
					e2 = fmt.Errorf("MulToStrategy(threads=%d colBlock=%d): %w", t2, blk, Compare(got, wantC, Tolerance{}))
				}
			},
			func() {
				got := m.MulVecParallel(v, t3)
				for i := range got {
					if got[i] != wantY[i] {
						e3 = fmt.Errorf("MulVecParallel(threads=%d) at [%d]: %v vs %v", t3, i, got[i], wantY[i])
						return
					}
				}
			},
			func() {
				got := dense.New(m.Rows(), b.Cols)
				m.MulToStrategy(got, b, t4, cbm.StrategyFused, 0)
				if !got.Equal(wantC) {
					e4 = fmt.Errorf("MulToStrategy(fused, threads=%d): %w", t4, Compare(got, wantC, Tolerance{}))
				}
			},
		)
		for _, err := range []error{e1, e2, e3, e4} {
			if err != nil {
				return fmt.Errorf("stress iter %d (seed %d): %w", it, cfg.Seed, err)
			}
		}
	}
	return nil
}

// StressPrimitives hammers parallel.For/ForDynamic/ForRange/Reduce with
// randomized sizes, thread counts and grain sizes, asserting exact
// coverage (every index visited once) and reduction correctness on
// every round. Run it under -race to surface distribution races.
func StressPrimitives(cfg StressConfig) error {
	cfg = cfg.normalized()
	rng := xrand.New(cfg.Seed)
	for it := 0; it < cfg.Iters; it++ {
		n := 1 + rng.Intn(5000)
		threads := 1 + rng.Intn(cfg.MaxThreads)
		grain := 1 + rng.Intn(n+16)
		hits := make([]int32, n)
		parallel.ForDynamic(n, threads, grain, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				return fmt.Errorf("stress iter %d: ForDynamic(n=%d threads=%d grain=%d) hit index %d %d times",
					it, n, threads, grain, i, h)
			}
			hits[i] = 0
		}
		parallel.For(n, threads, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				return fmt.Errorf("stress iter %d: For(n=%d threads=%d) hit index %d %d times",
					it, n, threads, i, h)
			}
			hits[i] = 0
		}
		parallel.ForRange(n, threads, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				return fmt.Errorf("stress iter %d: ForRange(n=%d threads=%d) hit index %d %d times",
					it, n, threads, i, h)
			}
		}
		sum := parallel.Reduce(n, threads,
			func() int64 { return 0 },
			func(acc int64, i int) int64 { return acc + int64(i) },
			func(a, b int64) int64 { return a + b },
		)
		if want := int64(n) * int64(n-1) / 2; sum != want {
			return fmt.Errorf("stress iter %d: Reduce(n=%d threads=%d) = %d, want %d",
				it, n, threads, sum, want)
		}
	}
	return nil
}
