// Command gcnserve drives the concurrent batched-inference engine
// (gnn.Engine) under synthetic load and reports per-request latency
// percentiles: a fixed worker count fires back-to-back full-graph GCN2
// inference requests at one engine per backend, each request leasing a
// pooled execution context, and the report compares CSR against CBM at
// the same concurrency. It is the serving-side companion of gcninfer's
// one-shot timing.
//
// With -batch the comparison changes axis: the CBM backend served
// unbatched versus through the cross-request micro-batching scheduler
// (requests coalesced into one wide SpMM per flush), swept over
// -concurrencies with the two modes interleaved ABBA per level so
// machine drift biases neither side.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cbm"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/xrand"
)

func main() {
	var (
		dataset     = flag.String("dataset", "ca-hepph", "registered dataset analog (see cbmbench -list)")
		alpha       = flag.Int("alpha", 4, "CBM edge-pruning threshold α")
		cols        = flag.Int("cols", 64, "feature/hidden width of the served model")
		classes     = flag.Int("classes", 16, "output class width of the served model")
		threads     = flag.Int("threads", 1, "thread budget per admitted request")
		maxInFlight = flag.Int("max-in-flight", 0, "execution slots per engine (0 = concurrency)")
		concurrency = flag.Int("concurrency", 8, "client worker goroutines")
		requests    = flag.Int("requests", 40, "requests per worker (after one warm-up each)")
		seed        = flag.Uint64("seed", 1, "generator seed")
		metrics     = flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")
		shards      = flag.Int("shards", 0, "serve the CBM side through the row-partitioned sharded backend (0/1 = unsharded)")
		shardOrder  = flag.String("shard-order", "", "row ordering before the shard cut: natural (default), minhash or rcm")

		batch         = flag.Bool("batch", false, "compare unbatched vs micro-batched CBM serving instead of CSR vs CBM")
		batchWindow   = flag.Duration("batch-window", 250*time.Microsecond, "micro-batch flush window")
		batchCols     = flag.Int("batch-cols", 0, "micro-batch column budget (0 = concurrency × cols)")
		concurrencies = flag.String("concurrencies", "", "comma-separated concurrency sweep for -batch (default: the -concurrency level)")
	)
	flag.Parse()
	if *concurrency < 1 || *requests < 1 {
		fatal(fmt.Errorf("need concurrency ≥ 1 and requests ≥ 1, got %d and %d", *concurrency, *requests))
	}
	slots := *maxInFlight
	if slots <= 0 {
		slots = *concurrency
	}

	d, err := bench.Get(*dataset)
	if err != nil {
		fatal(err)
	}
	a := d.Generate(*seed)
	outf("graph: %s (%d nodes, %d edges)\n", d.Name, a.Rows, a.NNZ())

	csrBackend, err := gnn.NewCSRBackend(a)
	if err != nil {
		fatal(err)
	}
	// The served CBM-side backend: unsharded by default; with -shards
	// the row-partitioned representation, whose per-shard lease pool the
	// engine provisions to its admission bound.
	var served gnn.Adjacency
	if *shards > 1 {
		sb, err := gnn.NewShardedCBMBackend(a,
			shard.Options{Shards: *shards, CBM: cbm.Options{Alpha: *alpha}, ColsHint: *cols}, *shardOrder)
		if err != nil {
			fatal(err)
		}
		served = sb.Backend
		halo := 0
		for _, h := range sb.Stats.HaloNNZ {
			halo += h
		}
		order := *shardOrder
		if order == "" {
			order = "natural"
		}
		outf("shards: %d (order %q, halo nnz %d, imbalance %d‰)\n",
			sb.Stats.Shards, order, halo, sb.Stats.ImbalancePermille)
	} else {
		cbmBackend, stats, err := gnn.NewCBMBackend(a, cbm.Options{Alpha: *alpha, Threads: 0})
		if err != nil {
			fatal(err)
		}
		served = cbmBackend
		outf("CBM build: %v (%d branches)\n", stats.Total(), cbmBackend.M.NumBranches())
	}

	model := gnn.NewGCN2(*cols, *cols, *classes, *seed+7)
	rng := xrand.New(*seed + 11)
	x := dense.New(a.Rows, *cols)
	rng.FillUniform(x.Data)

	if *batch {
		levels := []int{*concurrency}
		if *concurrencies != "" {
			levels = levels[:0]
			for _, s := range strings.Split(*concurrencies, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || v < 1 {
					fatal(fmt.Errorf("bad -concurrencies value %q", s))
				}
				levels = append(levels, v)
			}
		}
		batchSweep(model, served, x, levels, *requests, *threads, *maxInFlight, *batchWindow, *batchCols, *cols)
	} else {
		cfg := gnn.EngineConfig{MaxInFlight: slots, Threads: *threads}
		outf("engine: %d workers × %d requests, %d slots, %d thread(s)/request\n",
			*concurrency, *requests, slots, cfg.Threads)
		csrStats := serve(gnn.NewEngine(model, csrBackend, cfg), x, *concurrency, *requests)
		cbmStats := serve(gnn.NewEngine(model, served, cfg), x, *concurrency, *requests)
		outf("%-8s %10s %10s %10s %10s %12s\n", "backend", "mean_ms", "p50_ms", "p99_ms", "max_ms", "req/s")
		report("CSR", csrStats)
		report("CBM", cbmStats)
		outf("speedup (mean): %.2f×\n", csrStats.mean()/cbmStats.mean())
	}

	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// batchSweep compares unbatched vs micro-batched CBM serving at each
// concurrency level. The two modes run interleaved ABBA (unbatched,
// batched, batched, unbatched) so a machine-load drift across the
// sweep biases neither; the batched engine gets ONE execution slot —
// its concurrency comes from coalescing requests, not parallel slots.
func batchSweep(model gnn.Model, backend gnn.Adjacency, x *dense.Matrix, levels []int, requests, threads, maxInFlight int, window time.Duration, budget, cols int) {
	outf("batch sweep: window=%v, budget=%s, %d requests/worker per half-round\n",
		window, budgetLabel(budget), requests)
	outf("%-6s %-9s %10s %10s %10s %10s %12s\n", "conc", "mode", "mean_ms", "p50_ms", "p99_ms", "max_ms", "req/s")
	for _, conc := range levels {
		slots := maxInFlight
		if slots <= 0 {
			slots = conc
		}
		ub := gnn.NewEngine(model, backend, gnn.EngineConfig{MaxInFlight: slots, Threads: threads})
		maxCols := budget
		if maxCols <= 0 {
			maxCols = conc * cols
		}
		bb := gnn.NewEngine(model, backend, gnn.EngineConfig{
			MaxInFlight: 1,
			Threads:     threads,
			Batch:       gnn.BatchConfig{Window: window, MaxCols: maxCols},
		})
		flushes0 := obs.CounterValue(obs.CounterBatchFlushes)
		bcols0 := obs.CounterValue(obs.CounterBatchCols)
		// ABBA: half the rounds lead with each mode.
		var plain, batched loadStats
		plain.merge(serve(ub, x, conc, requests))
		batched.merge(serve(bb, x, conc, requests))
		batched.merge(serve(bb, x, conc, requests))
		plain.merge(serve(ub, x, conc, requests))
		meanBatchCols := 0.0
		if df := obs.CounterValue(obs.CounterBatchFlushes) - flushes0; df > 0 {
			meanBatchCols = float64(obs.CounterValue(obs.CounterBatchCols)-bcols0) / float64(df)
		}
		bb.Close()
		reportMode(conc, "plain", plain)
		reportMode(conc, "batched", batched)
		outf("conc=%d batched speedup (mean): %.2f×, p99: %.2f×, mean batch cols: %.0f\n",
			conc,
			plain.mean()/batched.mean(),
			bench.Quantile(plain.lat, 0.99)/bench.Quantile(batched.lat, 0.99),
			meanBatchCols)
	}
}

func budgetLabel(budget int) string {
	if budget <= 0 {
		return "conc×cols"
	}
	return strconv.Itoa(budget)
}

// loadStats holds per-request latencies (seconds) and the wall-clock
// span of the whole run.
type loadStats struct {
	lat  []float64
	wall float64
}

func (s loadStats) mean() float64 { return bench.Summarize(s.lat).Seconds() }

// merge pools another run's latencies into s (walls add: req/s stays
// total requests over total measured time).
func (s *loadStats) merge(o loadStats) {
	s.lat = append(s.lat, o.lat...)
	s.wall += o.wall
}

// serve fires concurrency workers at the engine, each issuing one
// unmeasured warm-up request (filling its slot's arena) followed by
// requests timed ones, and returns the pooled latencies.
func serve(e *gnn.Engine, x *dense.Matrix, concurrency, requests int) loadStats {
	perWorker := make([][]float64, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := dense.New(e.Rows(), e.OutDim())
			e.InferTo(out, x) // warm-up, untimed
			lat := make([]float64, requests)
			for r := range lat {
				t0 := time.Now()
				e.InferTo(out, x)
				lat[r] = time.Since(t0).Seconds()
			}
			perWorker[w] = lat
		}(w)
	}
	wg.Wait()
	s := loadStats{wall: time.Since(start).Seconds()}
	for _, lat := range perWorker {
		s.lat = append(s.lat, lat...)
	}
	return s
}

func report(name string, s loadStats) {
	t := bench.Summarize(s.lat)
	ms := func(sec float64) string { return fmt.Sprintf("%.3f", sec*1e3) }
	outf("%-8s %10s %10s %10s %10s %12.1f\n", name,
		ms(t.Seconds()),
		ms(bench.Quantile(s.lat, 0.5)),
		ms(bench.Quantile(s.lat, 0.99)),
		ms(bench.Quantile(s.lat, 1.0)),
		float64(len(s.lat))/s.wall)
}

func reportMode(conc int, mode string, s loadStats) {
	t := bench.Summarize(s.lat)
	ms := func(sec float64) string { return fmt.Sprintf("%.3f", sec*1e3) }
	outf("%-6d %-9s %10s %10s %10s %10s %12.1f\n", conc, mode,
		ms(t.Seconds()),
		ms(bench.Quantile(s.lat, 0.5)),
		ms(bench.Quantile(s.lat, 0.99)),
		ms(bench.Quantile(s.lat, 1.0)),
		float64(len(s.lat))/s.wall)
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "gcnserve:", err)
	os.Exit(1)
}

// outf writes a formatted line to stdout and exits non-zero if the
// write fails, so a broken pipe cannot silently truncate the report.
func outf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "gcnserve: write:", err)
		os.Exit(1)
	}
}
