// Command verify runs the differential-verification sweep of
// internal/oracle: for every adversarial/synthetic generator, matrix
// size, pruning threshold α, kind (A, AD, DAD) and thread count it
// compares the CBM kernels against two independent reference oracles
// (naive dense and naive CSR, both with float64 accumulation), runs the
// metamorphic property checks (linearity, tree reconstruction, MulVec
// consistency, execution-plan equivalence — two-stage vs branch-column
// vs fused single-pass, bitwise — and α invariance) and a short
// concurrency stress round.
//
// The process exits 0 only when every combination agrees within
// tolerance. On the first divergence it prints a report plus the exact
// command line that reproduces the failing combination in isolation,
// then exits 1.
//
//	go run ./cmd/verify -n 64 -sweep quick
//	go run ./cmd/verify -sweep full -seed 7
//	go run ./cmd/verify -gens hub -n 96 -alphas 4 -threads 8 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cbm"
	"repro/internal/dense"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/xrand"
)

func main() {
	var (
		n       = flag.Int("n", 64, "base matrix dimension")
		sweep   = flag.String("sweep", "quick", "sweep preset: quick (one size) or full (n/2, n, 2n and more α)")
		seed    = flag.Uint64("seed", 1, "master seed for graphs, diagonals and operands")
		gens    = flag.String("gens", "", "comma-separated generator names (default: all; see -list)")
		alphas  = flag.String("alphas", "", "comma-separated α values (default 0,4,16)")
		threads = flag.String("threads", "", "comma-separated thread counts (default 1,4)")
		cols    = flag.Int("cols", 16, "columns of the dense operand B")
		stress  = flag.Int("stress", 2, "concurrency stress iterations per graph (0 disables)")
		list    = flag.Bool("list", false, "list generators and exit")
		verbose = flag.Bool("v", false, "log every combination, not just failures")
		metrics = flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")
	)
	flag.Parse()

	if *list {
		for _, g := range oracle.Generators() {
			outf("%-12s %s\n", g.Name, g.Description)
		}
		return
	}

	sizes := []int{*n}
	alphaList := []int{0, 4, 16}
	threadList := []int{1, 4}
	if *sweep == "full" {
		sizes = []int{*n / 2, *n, 2 * *n}
		alphaList = []int{0, 1, 4, 16, 64}
		threadList = []int{1, 2, 4, 8}
	} else if *sweep != "quick" {
		fatalf("unknown -sweep %q (want quick or full)", *sweep)
	}
	if *n < 1 {
		fatalf("-n must be ≥ 1, got %d", *n)
	}
	if *alphas != "" {
		alphaList = parseInts(*alphas, "-alphas")
	}
	for _, a := range alphaList {
		if a < 0 {
			fatalf("-alphas values must be ≥ 0, got %d", a)
		}
	}
	if *threads != "" {
		threadList = parseInts(*threads, "-threads")
	}

	genList := oracle.Generators()
	if *gens != "" {
		genList = genList[:0:0]
		for _, name := range strings.Split(*gens, ",") {
			g, err := oracle.GetGenerator(strings.TrimSpace(name))
			if err != nil {
				fatalf("%v", err)
			}
			genList = append(genList, g)
		}
	}

	start := time.Now()
	combos := 0
	for _, size := range sizes {
		if size < 1 {
			continue
		}
		for _, g := range genList {
			c := runGraph(g, size, *seed, alphaList, threadList, *cols, *stress, *verbose)
			combos += c
		}
	}
	outf("verify: OK — %d kernel comparisons across %d generators, sizes %v, α %v, threads %v (%.2fs)\n",
		combos, len(genList), sizes, alphaList, threadList, time.Since(start).Seconds())
	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			fatalf("metrics: %v", err)
		}
	}
}

// runGraph verifies one (generator, size) cell of the sweep and returns
// the number of kernel-vs-oracle comparisons performed. Any divergence
// aborts the process with a repro line.
func runGraph(g oracle.Generator, n int, seed uint64, alphaList, threadList []int, cols, stress int, verbose bool) int {
	ctx := reproContext{gen: g.Name, n: n, seed: seed}
	a := g.Gen(n, seed)

	// Deterministic operands derived from the master seed.
	rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
	d := make([]float32, n)
	for i := range d {
		d[i] = rng.Float32() + 0.5 // bounded away from 0: DAD divides by d
	}
	b := dense.New(n, cols)
	rng.FillUniform(b.Data)
	b2 := dense.New(n, cols)
	rng.FillUniform(b2.Data)
	v := make([]float32, n)
	rng.FillUniform(v)

	maxThreads := 1
	for _, t := range threadList {
		if t > maxThreads {
			maxThreads = t
		}
	}

	ctx.check("alpha invariance", alphaList, 0,
		oracle.CheckAlphaInvariance(a, alphaList, b, maxThreads, oracle.Default()))

	builder, err := cbm.NewBuilder(a, cbm.Options{})
	if err != nil {
		fatalf("%s n=%d: builder: %v", g.Name, n, err)
	}
	combos := 0
	for _, alpha := range alphaList {
		base, _, err := builder.Compress(alpha, false)
		if err != nil {
			fatalf("%s n=%d α=%d: compress: %v", g.Name, n, alpha, err)
		}
		ctx.check("tree reconstruction", []int{alpha}, 0, oracle.CheckTreeReconstruction(a, base))
		for _, kind := range []cbm.Kind{cbm.KindA, cbm.KindAD, cbm.KindDAD} {
			m := scaled(base, kind, d)
			tol := oracle.KindTolerance(kind)
			operand := oracle.Operand(a, kind, d)
			denseRef := oracle.DenseProduct(operand, b)
			csrRef := oracle.CSRProduct(operand, b)
			vecRef := oracle.CSRMatVec(operand, v)
			for _, threads := range threadList {
				got := m.MulParallel(b, threads)
				ctx.checkKind("AX vs dense oracle", kind, alpha, threads, asErr(oracle.Compare(got, denseRef, tol)))
				ctx.checkKind("AX vs CSR oracle", kind, alpha, threads, asErr(oracle.Compare(got, csrRef, tol)))
				ctx.checkKind("MulVec vs CSR oracle", kind, alpha, threads,
					asErr(oracle.CompareVec(m.MulVecParallel(v, threads), vecRef, tol)))
				combos += 3
			}
			ctx.checkKind("MulVec consistency", kind, alpha, maxThreads,
				oracle.CheckMulVecConsistency(m, v, maxThreads, tol))
			ctx.checkKind("strategy equivalence", kind, alpha, maxThreads,
				oracle.CheckStrategyEquivalence(m, b, threadList, []int{1, 7, 64, cols + 1}))
			ctx.checkKind("linearity", kind, alpha, maxThreads,
				oracle.CheckLinearity(m, b, b2, 1.5, -0.5, maxThreads, oracle.Loose()))
			combos += 3
			if verbose {
				outf("  ok %-10s n=%-5d α=%-3d kind=%-3v (%d threads variants)\n",
					ctx.gen, n, alpha, kind, len(threadList))
			}
		}
		if stress > 0 {
			ctx.check("concurrency stress", []int{alpha}, 0,
				oracle.StressMatrix(scaled(base, cbm.KindDAD, d), b, v,
					oracle.StressConfig{Iters: stress, Seed: seed, MaxThreads: maxThreads * 2}))
		}
	}
	if stress > 0 {
		ctx.check("primitive stress", alphaList, 0,
			oracle.StressPrimitives(oracle.StressConfig{Iters: stress, Seed: seed}))
	}
	return combos
}

func scaled(base *cbm.Matrix, kind cbm.Kind, d []float32) *cbm.Matrix {
	switch kind {
	case cbm.KindAD:
		return base.WithColumnScale(d)
	case cbm.KindDAD:
		return base.WithSymmetricScale(d)
	default:
		return base
	}
}

// reproContext carries the coordinates needed to print a minimal repro
// command when a check fails.
type reproContext struct {
	gen  string
	n    int
	seed uint64
}

func (c reproContext) check(what string, alphas []int, threads int, err error) {
	if err == nil {
		return
	}
	c.fail(what, joinInts(alphas), threads, err)
}

func (c reproContext) checkKind(what string, kind cbm.Kind, alpha, threads int, err error) {
	if err == nil {
		return
	}
	c.fail(fmt.Sprintf("%s [kind=%v]", what, kind), strconv.Itoa(alpha), threads, err)
}

func (c reproContext) fail(what, alphas string, threads int, err error) {
	_, _ = fmt.Fprintf(os.Stderr, "verify: DIVERGENCE in %s\n", what)
	_, _ = fmt.Fprintf(os.Stderr, "  generator=%s n=%d seed=%d\n", c.gen, c.n, c.seed)
	_, _ = fmt.Fprintf(os.Stderr, "  %v\n", err)
	t := ""
	if threads > 0 {
		t = fmt.Sprintf(" -threads %d", threads)
	}
	_, _ = fmt.Fprintf(os.Stderr, "  repro: go run ./cmd/verify -gens %s -n %d -alphas %s%s -seed %d\n",
		c.gen, c.n, alphas, t, c.seed)
	os.Exit(1)
}

func asErr(d *oracle.Divergence) error {
	if d == nil {
		return nil
	}
	return d
}

func parseInts(csv, flagName string) []int {
	var out []int
	for _, tok := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fatalf("bad %s value %q: %v", flagName, tok, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("%s must name at least one value", flagName)
	}
	return out
}

func joinInts(vals []int) string {
	toks := make([]string, len(vals))
	for i, v := range vals {
		toks[i] = strconv.Itoa(v)
	}
	return strings.Join(toks, ",")
}

func fatalf(format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, "verify: "+format+"\n", args...)
	os.Exit(1)
}

// outf writes a formatted line to stdout and exits non-zero if the
// write fails: the final OK line is the sweep's verdict, so a broken
// pipe must not pass silently.
func outf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "verify: write:", err)
		os.Exit(1)
	}
}
