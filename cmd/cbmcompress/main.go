// Command cbmcompress converts a graph to the CBM format and reports
// Table-II style compression statistics: build time per phase,
// footprints, compression ratio, tree shape.
//
// Input is either a registered synthetic dataset (-dataset) or an
// edge-list file (-in, "src dst" per line). Use -save to serialize the
// compressed matrix to disk in the repository's binary CBM container.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cbm"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "registered dataset analog name (see cbmbench -list)")
		in      = flag.String("in", "", "edge-list file to compress instead of a dataset")
		alpha   = flag.Int("alpha", 0, "edge-pruning threshold α")
		threads = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 1, "generator seed for -dataset")
		maxCand = flag.Int("maxcand", 0, "cap candidate parents per row (0 = unlimited)")
		save    = flag.String("save", "", "write the compressed matrix to this file")
		dot     = flag.String("dot", "", "write the compression tree as Graphviz DOT to this file")
		hist    = flag.Bool("hist", false, "print the per-row delta histogram and branch-size distribution")
		metrics = flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")

		window     = flag.Int("window", 0, "restrict candidate parents to |x−y| ≤ window (0 = exact, order-invariant)")
		doReorder  = flag.String("reorder", "", "reorder rows before compressing: minhash (similarity) or rcm (bandwidth); reports before/after ratio")
		assertGain = flag.Bool("assert-reorder-gain", false, "with -reorder: exit non-zero unless the reordered ratio strictly beats the raw ratio")
	)
	flag.Parse()

	var a *sparse.CSR
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*in, ".mtx") {
			a, err = sparse.ReadMatrixMarket(f)
		} else {
			a, err = sparse.ReadEdgeList(f)
		}
		_ = f.Close() // read-only handle; decode errors are checked below
		if err != nil {
			fatal(err)
		}
		if !a.IsBinary() {
			// CBM compresses binary matrices; drop weights like the
			// paper does for ogbn-proteins.
			for i := range a.Vals {
				a.Vals[i] = 1
			}
			_, _ = fmt.Fprintln(os.Stderr, "cbmcompress: input had values; weights dropped (binary pattern kept)")
		}
		// Edge lists may be directed; CBM needs only binary + square,
		// both of which ReadEdgeList guarantees for square inputs.
		if a.Rows != a.Cols {
			fatal(fmt.Errorf("edge list is %d×%d; CBM needs a square matrix", a.Rows, a.Cols))
		}
	case *dataset != "":
		d, err := bench.Get(*dataset)
		if err != nil {
			fatal(err)
		}
		a = d.Generate(*seed)
	default:
		fatal(fmt.Errorf("pass -dataset <name> or -in <edgelist>"))
	}

	opt := cbm.Options{
		Alpha:         *alpha,
		Threads:       *threads,
		MaxCandidates: *maxCand,
		Window:        *window,
	}
	m, stats, err := cbm.Compress(a, opt)
	if err != nil {
		fatal(err)
	}
	ratio := float64(a.FootprintBytes()) / float64(m.FootprintBytes())

	var (
		reBuild   time.Duration
		reRatio   float64
		reStats   reorder.Stats
		reordered bool
	)
	if *doReorder != "" {
		strat, err := reorder.ParseStrategy(*doReorder)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		p, rs := reorder.Build(a, reorder.Options{Threads: *threads, Strategy: strat})
		reBuild = time.Since(start)
		reStats = rs
		pa := a.PermuteSymmetric(p.Perm())
		mp, _, err := cbm.Compress(pa, opt)
		if err != nil {
			fatal(err)
		}
		reRatio = float64(a.FootprintBytes()) / float64(mp.FootprintBytes())
		// The reordered matrix drives the rest of the report: the saved
		// container and histograms describe what a reordering deployment
		// would actually ship.
		m, reordered = mp, true
	}

	outf("matrix:            %d×%d, nnz %d\n", a.Rows, a.Cols, a.NNZ())
	outf("alpha:             %d\n", *alpha)
	if *window > 0 {
		outf("window:            %d (banded candidates)\n", *window)
	}
	outf("candidate edges:   %d\n", stats.CandidateEdges)
	outf("deltas (nnz A'):   %d  (%.1f%% of nnz)\n",
		m.NumDeltas(), 100*float64(m.NumDeltas())/float64(maxInt(a.NNZ(), 1)))
	outf("tree edges:        %d real, %d virtual-root children, depth %d\n",
		stats.TreeEdges, stats.VirtualKids, stats.Depth)
	outf("build time:        %v (candidates %v, tree %v, deltas %v)\n",
		stats.Total(), stats.CandidateTime, stats.TreeTime, stats.DeltaTime)
	outf("S_CSR:             %s MiB\n", bench.MiB(a.FootprintBytes()))
	outf("S_CBM:             %s MiB\n", bench.MiB(m.FootprintBytes()))
	outf("compression ratio: %.2f×\n", ratio)
	if reordered {
		outf("reorder build:     %v (%s: %d buckets, largest %d)\n",
			reBuild, *doReorder, reStats.Buckets, reStats.LargestBucket)
		outf("reordered ratio:   %.2f× (raw %.2f×)\n", reRatio, ratio)
		if *assertGain && reRatio <= ratio {
			fatal(fmt.Errorf("reordered ratio %.4f did not beat raw %.4f "+
				"(hint: exact mode is permutation-invariant; pass -window)", reRatio, ratio))
		}
	}

	if *hist {
		printHistograms(m)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteDOT(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		outf("tree DOT:          %s\n", *dot)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := m.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		outf("saved:             %s\n", *save)
	}
	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// printHistograms summarizes the format's shape: how many deltas each
// row needed (bucketed by powers of two) and how large the parallel
// branches are.
func printHistograms(m *cbm.Matrix) {
	bucketOf := func(v int) int {
		b := 0
		for v > 0 {
			v >>= 1
			b++
		}
		return b
	}
	deltaBuckets := map[int]int{}
	for x := 0; x < m.Rows(); x++ {
		deltaBuckets[bucketOf(m.Delta().RowNNZ(x))]++
	}
	outf("%s\n", "per-row delta histogram (bucket = ⌈log2(deltas+1)⌉):")
	for b := 0; b <= 32; b++ {
		if c, ok := deltaBuckets[b]; ok {
			lo, hi := 0, 0
			if b > 0 {
				lo, hi = 1<<(b-1), (1<<b)-1
			}
			outf("  %7d..%-7d %d rows\n", lo, hi, c)
		}
	}
	branchBuckets := map[int]int{}
	for _, sz := range m.BranchSizes() {
		branchBuckets[bucketOf(sz)]++
	}
	outf("%s\n", "branch-size histogram:")
	for b := 1; b <= 32; b++ {
		if c, ok := branchBuckets[b]; ok {
			outf("  %7d..%-7d %d branches\n", 1<<(b-1), (1<<b)-1, c)
		}
	}
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "cbmcompress:", err)
	os.Exit(1)
}

// outf writes a formatted line to stdout and exits non-zero if the
// write fails, so a broken pipe cannot silently truncate the report.
func outf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "cbmcompress: write:", err)
		os.Exit(1)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
