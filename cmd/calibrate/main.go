// Command calibrate checks every registered dataset analog against the
// paper's published structural targets: node count, average degree,
// clustering coefficient, and the α = 0 / α = 32 compression ratios.
// It is the tool used to tune the generator parameters in
// internal/bench/registry.go; re-run it after touching any generator.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/cbm"
	"repro/internal/graph"
	"repro/internal/obs"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	threads := flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	metrics := flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")
	flag.Parse()

	for _, d := range bench.Registry {
		start := time.Now()
		a := d.Generate(*seed)
		gen := time.Since(start)
		st := graph.Summarize(a)
		cc := graph.AverageClusteringCoefficient(a, *threads)

		start = time.Now()
		b, err := cbm.NewBuilder(a, cbm.Options{Threads: *threads})
		if err != nil {
			panic(err)
		}
		m0, s0, err := b.Compress(0, false)
		if err != nil {
			panic(err)
		}
		build := time.Since(start)
		m32, _, err := b.Compress(32, false)
		if err != nil {
			panic(err)
		}
		r0 := float64(a.FootprintBytes()) / float64(m0.FootprintBytes())
		r32 := float64(a.FootprintBytes()) / float64(m32.FootprintBytes())
		outf("%-18s n=%7d deg=%6.1f (paper %6.1f) cc=%.2f (paper %.2f) "+
			"ratio0=%5.2f (paper %5.2f) ratio32=%5.2f (paper %5.2f) "+
			"cand=%d kids0=%d build=%v gen=%v\n",
			d.Name, st.Nodes, st.AverageDegree, d.Paper.AvgDegree,
			cc, d.Paper.ClusteringCoef,
			r0, d.Paper.RatioAlpha0, r32, d.Paper.RatioAlpha32,
			s0.CandidateEdges, s0.VirtualKids, build, gen)
	}
	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			_, _ = fmt.Fprintln(os.Stderr, "calibrate: metrics:", err)
			os.Exit(1)
		}
	}
}

// outf writes a formatted report line to stdout and exits non-zero if
// the write fails (e.g. a closed pipe), so calibration scripts cannot
// mistake truncated output for a clean run.
func outf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "calibrate: write:", err)
		os.Exit(1)
	}
}
