// Command calibrate is the repository's calibration tool, in two
// halves.
//
// With no mode flag it checks every registered dataset analog against
// the paper's published structural targets: node count, average
// degree, clustering coefficient, and the α = 0 / α = 32 compression
// ratios — the tool used to tune the generator parameters in
// internal/bench/registry.go; re-run it after touching any generator.
//
// The plan-selector modes drive the committed selector artifacts:
//
//	-plans        run the plan-calibration sweep (all three execution
//	              plans per graph/kind/threads/cols configuration,
//	              drift-immune interleaved measurement, scoped
//	              per-stage splits) and write CALIBRATION.json
//	-fit          refit the decision tree from CALIBRATION.json and
//	              write internal/costmodel/model_default.go
//	-check-model  fail if the committed model, the committed report's
//	              recorded choices, or the acceptance gate are stale
//	              against CALIBRATION.json
//	-gate         run a fresh sweep (usually with -mini) and fail if
//	              the committed selector picks a plan more than 5%
//	              (+noise) slower than the best measured plan
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cbm"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/obs"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	threads := flag.Int("threads", 0, "worker count for the structural check (0 = GOMAXPROCS)")
	metrics := flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")

	plans := flag.Bool("plans", false, "run the plan-calibration sweep and write -out")
	fit := flag.Bool("fit", false, "refit the selector model from -calib and write -out")
	checkModel := flag.Bool("check-model", false, "fail if the committed model is stale against -calib")
	gate := flag.Bool("gate", false, "run a fresh sweep and fail on selector acceptance violations")

	calib := flag.String("calib", "CALIBRATION.json", "calibration report path (-fit, -check-model)")
	out := flag.String("out", "", "output path (-plans: report JSON, default CALIBRATION.json; -fit: model source, default internal/costmodel/model_default.go)")
	datasets := flag.String("datasets", "", "comma-separated registry subset for the sweep (empty = all)")
	mini := flag.Bool("mini", false, "sweep the scaled-down mini registry (smokes)")
	withMini := flag.Bool("with-mini", false, "append the mini registry to the full sweep (the committed artifact covers both scales)")
	sweepThreads := flag.String("sweep-threads", "", "comma-separated thread counts for the sweep (default 1,4)")
	sweepCols := flag.String("sweep-cols", "", "comma-separated operand widths for the sweep (default 16,32)")
	reps := flag.Int("reps", 0, "sweep timing repetitions (default 7)")
	warmup := flag.Int("warmup", 0, "sweep warmup repetitions (default 2)")
	flag.Parse()

	modes := 0
	for _, m := range []bool{*plans, *fit, *checkModel, *gate} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fail("pick one of -plans, -fit, -check-model, -gate")
	}

	cfg := experiments.CalibrateConfig{
		Seed:        *seed,
		Reps:        *reps,
		Warmup:      *warmup,
		Threads:     parseInts(*sweepThreads, "-sweep-threads"),
		Cols:        parseInts(*sweepCols, "-sweep-cols"),
		Mini:        *mini,
		IncludeMini: *withMini,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	switch {
	case *plans:
		runPlans(cfg, *out)
	case *fit:
		runFit(*calib, *out)
	case *checkModel:
		runCheckModel(*calib)
	case *gate:
		runGate(cfg)
	default:
		structuralCheck(*seed, *threads)
	}
	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			fail("metrics: %v", err)
		}
	}
}

// runPlans runs the full sweep, writes the report, and refuses to emit
// an artifact the acceptance gate would reject — a committed
// CALIBRATION.json that fails its own bound is worse than none.
func runPlans(cfg experiments.CalibrateConfig, out string) {
	if out == "" {
		out = "CALIBRATION.json"
	}
	r, err := experiments.Calibrate(cfg)
	if err != nil {
		fail("%v", err)
	}
	if err := r.WriteFile(out); err != nil {
		fail("writing %s: %v", out, err)
	}
	outf("calibrate: %d samples -> %s\n", len(r.Samples), out)
	for _, f := range r.Findings {
		outf("  finding: %s\n", f)
	}
	if v := experiments.Gate(r); len(v) > 0 {
		for _, line := range v {
			_, _ = fmt.Fprintln(os.Stderr, "calibrate: gate:", line)
		}
		fail("the committed selector fails its acceptance bound on this sweep; refit with -fit")
	}
}

// runFit refits the decision tree from the committed report and writes
// the generated model source. It also rewrites the report's recorded
// Chosen fields with the new model's decisions — the committed artifact
// and the committed model must describe each other, and re-measuring
// just to refresh a derived column would let fresh noise desync the fit
// from its own evidence.
func runFit(calib, out string) {
	if out == "" {
		out = "internal/costmodel/model_default.go"
	}
	r, err := costmodel.ReadCalibration(calib)
	if err != nil {
		fail("%v", err)
	}
	samples := r.FitSamples()
	m := costmodel.Fit(samples, costmodel.DefaultFitOptions())
	model, oracle := costmodel.TotalCost(&m, samples)
	src, err := format.Source([]byte(m.GoSource()))
	if err != nil {
		fail("formatting generated model: %v", err)
	}
	if err := os.WriteFile(out, src, 0o644); err != nil {
		fail("writing %s: %v", out, err)
	}
	for i := range r.Samples {
		r.Samples[i].Chosen = m.Select(r.Samples[i].Features).String()
	}
	if err := r.WriteFile(calib); err != nil {
		fail("rewriting %s: %v", calib, err)
	}
	outf("calibrate: fit %d nodes from %d samples -> %s (choices refreshed in %s)\n",
		len(m.Nodes), len(samples), out, calib)
	outf("calibrate: model cost %.4gs vs oracle %.4gs (%.1f%% above optimal)\n",
		model, oracle, 100*(model/oracle-1))
	if v := experiments.Gate(r); len(v) > 0 {
		for _, line := range v {
			_, _ = fmt.Fprintln(os.Stderr, "calibrate: gate:", line)
		}
		fail("the fitted model fails the acceptance bound on its own training data")
	}
}

// runCheckModel is the staleness gate: the committed model must be the
// refit of the committed report, the report's recorded choices must be
// what the committed model selects, and the report must pass the
// acceptance gate.
func runCheckModel(calib string) {
	r, err := costmodel.ReadCalibration(calib)
	if err != nil {
		fail("%v", err)
	}
	refit := costmodel.Fit(r.FitSamples(), costmodel.DefaultFitOptions())
	if !refit.Equal(&costmodel.DefaultModel) {
		fail("internal/costmodel/model_default.go is stale: refitting %s yields a different model; run -fit and commit", calib)
	}
	for _, s := range r.Samples {
		if got := costmodel.DefaultModel.Select(s.Features).String(); got != s.Chosen {
			fail("%s: recorded chosen=%q but the committed model selects %q; re-run -plans", calib, s.Chosen, got)
		}
	}
	if v := experiments.Gate(r); len(v) > 0 {
		for _, line := range v {
			_, _ = fmt.Fprintln(os.Stderr, "calibrate: gate:", line)
		}
		fail("committed %s fails the selector acceptance bound", calib)
	}
	outf("calibrate: model, recorded choices and gate are in sync with %s (%d samples)\n", calib, len(r.Samples))
}

// runGate measures fresh and gates the committed selector against what
// this machine actually observes.
func runGate(cfg experiments.CalibrateConfig) {
	r, err := experiments.Calibrate(cfg)
	if err != nil {
		fail("%v", err)
	}
	if v := experiments.Gate(r); len(v) > 0 {
		for _, line := range v {
			_, _ = fmt.Fprintln(os.Stderr, "calibrate: gate:", line)
		}
		fail("selector picked a plan >5%% slower than the measured best on %d of %d configurations", len(v), len(r.Samples))
	}
	outf("calibrate: gate passed on %d fresh configurations\n", len(r.Samples))
}

// structuralCheck is the original dataset-analog verification.
func structuralCheck(seed uint64, threads int) {
	for _, d := range bench.Registry {
		start := time.Now()
		a := d.Generate(seed)
		gen := time.Since(start)
		st := graph.Summarize(a)
		cc := graph.AverageClusteringCoefficient(a, threads)

		start = time.Now()
		b, err := cbm.NewBuilder(a, cbm.Options{Threads: threads})
		if err != nil {
			panic(err)
		}
		m0, s0, err := b.Compress(0, false)
		if err != nil {
			panic(err)
		}
		build := time.Since(start)
		m32, _, err := b.Compress(32, false)
		if err != nil {
			panic(err)
		}
		r0 := float64(a.FootprintBytes()) / float64(m0.FootprintBytes())
		r32 := float64(a.FootprintBytes()) / float64(m32.FootprintBytes())
		outf("%-18s n=%7d deg=%6.1f (paper %6.1f) cc=%.2f (paper %.2f) "+
			"ratio0=%5.2f (paper %5.2f) ratio32=%5.2f (paper %5.2f) "+
			"cand=%d kids0=%d build=%v gen=%v\n",
			d.Name, st.Nodes, st.AverageDegree, d.Paper.AvgDegree,
			cc, d.Paper.ClusteringCoef,
			r0, d.Paper.RatioAlpha0, r32, d.Paper.RatioAlpha32,
			s0.CandidateEdges, s0.VirtualKids, build, gen)
	}
}

// parseInts parses a comma-separated int list; empty means "use the
// sweep default".
func parseInts(s, flagName string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			fail("%s: bad value %q", flagName, p)
		}
		out = append(out, v)
	}
	return out
}

func fail(format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, "calibrate: "+format+"\n", args...)
	os.Exit(1)
}

// outf writes a formatted report line to stdout and exits non-zero if
// the write fails (e.g. a closed pipe), so calibration scripts cannot
// mistake truncated output for a clean run.
func outf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "calibrate: write:", err)
		os.Exit(1)
	}
}
