// Command cbmlint runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns — a multichecker in
// the spirit of golang.org/x/tools/go/analysis/multichecker, built on
// the standard library only.
//
//	cbmlint ./...                 # whole module (what ci.sh runs)
//	cbmlint -run hotalloc ./internal/kernels/...
//	cbmlint -list
//
// It accepts the same package patterns as go vet, so CI can point both
// tools at one shared pattern set. Diagnostics print as
// file:line:col: [analyzer] message; the exit status is 1 when any
// diagnostic was reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/obs"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		metrics = flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			outf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *runList != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*runList, ",") {
			a := lint.Get(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fatalf("%v", err)
	}

	cwd, _ := os.Getwd()
	found := 0
	for _, pkg := range pkgs {
		var diags []lint.Diagnostic
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			diags = append(diags, lint.RunAnalyzer(a, pkg)...)
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			pos := d.Position(pkg.Fset)
			name := pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			outf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		outf("cbmlint: %d diagnostic(s)\n", found)
		os.Exit(1)
	}
	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			fatalf("metrics: %v", err)
		}
	}
}

// outf writes to stdout and exits non-zero when the write fails, so a
// broken pipe cannot silently swallow diagnostics.
func outf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		fatalf("writing output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, "cbmlint: "+format+"\n", args...)
	os.Exit(2)
}
