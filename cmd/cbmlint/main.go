// Command cbmlint runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns — a multichecker in
// the spirit of golang.org/x/tools/go/analysis/multichecker, built on
// the standard library only.
//
//	cbmlint ./...                 # whole module (what ci.sh runs)
//	cbmlint -run hotalloc ./internal/kernels/...
//	cbmlint -json ./...           # machine-readable report on stdout
//	cbmlint -list
//
// It accepts the same package patterns as go vet, so CI can point both
// tools at one shared pattern set. Diagnostics print as
// file:line:col: [analyzer] message, or with -json as a JSON array of
// {file, line, col, analyzer, message} objects ([] when clean) for
// stable, greppable CI reports.
//
// Exit status:
//
//	0  no diagnostics
//	1  one or more diagnostics reported
//	2  usage error, unknown analyzer, or package load/type-check failure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/obs"
)

// jsonDiagnostic is one -json report entry. The field set is the
// contract ci.sh (and any other tooling) consumes; extend, don't
// rename.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		runList = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		jsonOut = flag.Bool("json", false, "print diagnostics as a JSON array on stdout ([] when clean)")
		metrics = flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			outf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *runList != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*runList, ",") {
			a := lint.Get(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fatalf("%v", err)
	}

	cwd, _ := os.Getwd()
	report := []jsonDiagnostic{} // non-nil so -json prints [] when clean
	for _, pkg := range pkgs {
		var diags []lint.Diagnostic
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			diags = append(diags, lint.RunAnalyzer(a, pkg)...)
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			pos := d.Position(pkg.Fset)
			name := pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			report = append(report, jsonDiagnostic{
				File:     name,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			if !*jsonOut {
				outf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatalf("writing JSON report: %v", err)
		}
	}
	if len(report) > 0 {
		if !*jsonOut {
			outf("cbmlint: %d diagnostic(s)\n", len(report))
		}
		os.Exit(1)
	}
	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			fatalf("metrics: %v", err)
		}
	}
}

// outf writes to stdout and exits non-zero when the write fails, so a
// broken pipe cannot silently swallow diagnostics.
func outf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		fatalf("writing output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, "cbmlint: "+format+"\n", args...)
	os.Exit(2)
}
