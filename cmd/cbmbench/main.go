// Command cbmbench regenerates every table and figure of the paper's
// evaluation section on the synthetic dataset analogs.
//
// Usage:
//
//	cbmbench -exp all                      # everything, scaled defaults
//	cbmbench -exp table2,fig2 -datasets cora,collab
//	cbmbench -exp table4 -cols 500 -reps 25   # paper-width GCN run
//
// Results print as plain-text tables mirroring the paper's layout and
// include the paper's published values for side-by-side comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/cbm"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		exps         = flag.String("exp", "all", "comma-separated experiments: table1,table2,fig2,table3,table4,table5,verify,bench,ablation,gnnsuite,scaling,memwall,buildscale,all")
		seed         = flag.Uint64("seed", 1, "generator seed")
		threads      = flag.Int("threads", 0, "parallel worker count (0 = GOMAXPROCS)")
		cols         = flag.Int("cols", 128, "columns of the dense operand X (paper: 500)")
		reps         = flag.Int("reps", 5, "timing repetitions (paper: 250)")
		warmup       = flag.Int("warmup", 1, "warmup runs before timing")
		datasets     = flag.String("datasets", "", "comma-separated dataset subset (default: all; see -list)")
		alphas       = flag.String("alphas", "", "comma-separated α sweep for fig2 (default 0,1,2,4,8,16,32)")
		out          = flag.String("o", "", "write output to this file as well as stdout")
		list         = flag.Bool("list", false, "list registered datasets and exit")
		verifyTrials = flag.Int("verify-trials", 5, "random operand matrices per dataset for -exp verify (paper: 50)")
		jsonOut      = flag.String("json", "", "additionally write all results as JSON to this file")
		benchOut     = flag.String("bench-out", "BENCH_cbm.json", "machine-readable report file for -exp bench")
		checkBench   = flag.String("check-bench", "", "validate an existing bench report file and exit")
		metrics      = flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")
		profile      = flag.Bool("stage-labels", false, "attach pprof cbm_stage goroutine labels to instrumented regions")
		plan         = flag.String("plan", "", "process-wide plan mode for MulTo: auto, heuristic, two-stage, fused or csr (default auto; also CBM_PLAN)")
		doReorder    = flag.String("reorder", "", "run -exp bench headline numbers on the reordered graph (banded candidate build): minhash or rcm")
		window       = flag.Int("window", 0, "candidate band for the bench reorder block (0 = default 64)")
		shards       = flag.String("shards", "", "comma-separated shard counts for the bench shard block (default 1,2,4,8)")
		shardOrder   = flag.String("shard-order", "", "row ordering before the shard cut: natural (default), minhash or rcm")
	)
	flag.Parse()

	if *plan != "" {
		pm, err := cbm.ParsePlanMode(*plan)
		if err != nil {
			fatalf("%v", err)
		}
		cbm.SetPlanMode(pm)
	}

	if *checkBench != "" {
		f, err := os.Open(*checkBench)
		if err != nil {
			fatalf("check-bench: %v", err)
		}
		_, rerr := experiments.ReadBenchReport(f)
		if cerr := f.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			fatalf("check-bench %s: %v", *checkBench, rerr)
		}
		outln("check-bench: " + *checkBench + " OK")
		return
	}
	if *profile {
		obs.EnableProfiling()
	}
	if *metrics {
		defer dumpMetrics()
	}

	if *list {
		for _, name := range bench.Names() {
			if _, err := fmt.Println(name); err != nil {
				fatalf("write: %v", err)
			}
		}
		return
	}

	cfg := experiments.Config{
		Seed:            *seed,
		Threads:         *threads,
		Cols:            *cols,
		Reps:            *reps,
		Warmup:          *warmup,
		Reorder:         *doReorder != "",
		ReorderStrategy: *doReorder,
		ReorderWindow:   *window,
		ShardOrder:      *shardOrder,
	}
	if *shards != "" {
		for _, s := range strings.Split(*shards, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatalf("bad -shards value %q", s)
			}
			cfg.ShardCounts = append(cfg.ShardCounts, v)
		}
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *alphas != "" {
		for _, s := range strings.Split(*alphas, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("bad -alphas value %q: %v", s, err)
			}
			cfg.Alphas = append(cfg.Alphas, v)
		}
	}

	var w io.Writer = os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		outFile = f
		w = io.MultiWriter(os.Stdout, f)
	}

	results := map[string]interface{}{}
	selected := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]
	ran := false

	if all || selected["table1"] {
		ran = true
		rows, err := experiments.Table1(cfg)
		if err != nil {
			fatalf("table1: %v", err)
		}
		experiments.WriteTable1(w, rows)
		results["table1"] = rows
		blankLine(w)
	}
	if all || selected["table2"] {
		ran = true
		rows, err := experiments.Table2(cfg)
		if err != nil {
			fatalf("table2: %v", err)
		}
		experiments.WriteTable2(w, rows)
		results["table2"] = rows
		blankLine(w)
	}
	if all || selected["fig2"] {
		ran = true
		series, err := experiments.Fig2(cfg)
		if err != nil {
			fatalf("fig2: %v", err)
		}
		experiments.WriteFig2(w, series)
		results["fig2"] = series
		blankLine(w)
	}
	if all || selected["table3"] {
		ran = true
		rows, err := experiments.Table3(cfg)
		if err != nil {
			fatalf("table3: %v", err)
		}
		experiments.WriteTable3(w, rows)
		results["table3"] = rows
		blankLine(w)
	}
	if all || selected["table4"] {
		ran = true
		rows, err := experiments.Table4(cfg)
		if err != nil {
			fatalf("table4: %v", err)
		}
		experiments.WriteTable4(w, rows)
		results["table4"] = rows
		blankLine(w)
	}
	if all || selected["verify"] {
		ran = true
		rows, err := experiments.Verify(cfg, *verifyTrials)
		if err != nil {
			fatalf("verify: %v", err)
		}
		experiments.WriteVerify(w, rows)
		results["verify"] = rows
		blankLine(w)
	}
	if all || selected["bench"] {
		ran = true
		report, err := experiments.BenchJSON(cfg)
		if err != nil {
			fatalf("bench: %v", err)
		}
		experiments.WriteBench(w, report)
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				fatalf("create %s: %v", *benchOut, err)
			}
			werr := experiments.WriteBenchReport(f, report)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fatalf("write %s: %v", *benchOut, werr)
			}
			outln("bench report: " + *benchOut)
		}
		results["bench"] = report
		blankLine(w)
	}
	if all || selected["table5"] {
		ran = true
		rows, err := experiments.Table5(cfg)
		if err != nil {
			fatalf("table5: %v", err)
		}
		experiments.WriteTable5(w, rows)
		results["table5"] = rows
		blankLine(w)
	}
	if selected["gnnsuite"] { // extension: per-architecture forward-pass comparison
		ran = true
		rows, err := experiments.GNNSuite(cfg)
		if err != nil {
			fatalf("gnnsuite: %v", err)
		}
		experiments.WriteGNNSuite(w, rows)
		results["gnnsuite"] = rows
		blankLine(w)
	}
	if selected["scaling"] { // extension: strong-scaling sweep
		ran = true
		series, err := experiments.Scaling(cfg)
		if err != nil {
			fatalf("scaling: %v", err)
		}
		experiments.WriteScaling(w, series)
		results["scaling"] = series
		blankLine(w)
	}
	if selected["buildscale"] { // extension: Lemma 1 construction-scaling check
		ran = true
		points, err := experiments.BuildScale(cfg, nil)
		if err != nil {
			fatalf("buildscale: %v", err)
		}
		experiments.WriteBuildScale(w, points)
		results["buildscale"] = points
		blankLine(w)
	}
	if selected["memwall"] { // extension: Sec. VIII memory-wall study on the Reddit analog
		ran = true
		rows, err := experiments.MemWall(cfg)
		if err != nil {
			fatalf("memwall: %v", err)
		}
		experiments.WriteMemWall(w, rows)
		results["memwall"] = rows
		blankLine(w)
	}
	if selected["ablation"] { // not part of "all": it is a design study, not a paper table
		ran = true
		rows, err := experiments.Ablation(cfg)
		if err != nil {
			fatalf("ablation: %v", err)
		}
		experiments.WriteAblation(w, rows)
		results["ablation"] = rows
		blankLine(w)
	}
	if outFile != nil {
		// A close failure can drop buffered table rows: report it and
		// exit non-zero rather than pretend the run completed.
		if err := outFile.Close(); err != nil {
			fatalf("close %s: %v", *out, err)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatalf("marshal results: %v", err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatalf("write %s: %v", *jsonOut, err)
		}
	}
	if !ran {
		fatalf("no experiment selected (got -exp %q); valid: table1,table2,fig2,table3,table4,table5,verify,bench,ablation,gnnsuite,scaling,memwall,buildscale,all", *exps)
	}
}

// dumpMetrics writes the obs snapshot to stderr (not stdout, so result
// tables stay machine-separable from diagnostics).
func dumpMetrics() {
	if err := obs.WriteJSON(os.Stderr); err != nil {
		fatalf("metrics: %v", err)
	}
}

// outln writes one status line to stdout, failing loudly like the
// table writers do.
func outln(s string) {
	if _, err := fmt.Println(s); err != nil {
		fatalf("write: %v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	_, _ = fmt.Fprintf(os.Stderr, "cbmbench: "+format+"\n", args...)
	os.Exit(1)
}

// blankLine separates experiment sections. Any write failure aborts the
// run: a truncated -o report must not look like a completed one.
func blankLine(w io.Writer) {
	if _, err := fmt.Fprintln(w); err != nil {
		fatalf("write: %v", err)
	}
}
