// Command gcninfer times two-layer GCN inference (Eq. 1 of the paper)
// on a dataset analog, with the normalized adjacency stored either as
// one scaled CSR matrix or as a CBM DAD matrix, and reports the
// speedup. It is the single-dataset interactive version of
// `cbmbench -exp table4`.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cbm"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/shard"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

func main() {
	var (
		dataset     = flag.String("dataset", "ca-hepph", "registered dataset analog (see cbmbench -list)")
		alpha       = flag.Int("alpha", 4, "CBM edge-pruning threshold α")
		threads     = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		cols        = flag.Int("cols", 128, "feature/hidden/class width (paper: 500)")
		reps        = flag.Int("reps", 5, "timing repetitions")
		seed        = flag.Uint64("seed", 1, "generator seed")
		train       = flag.Bool("train", false, "also run a short training loop on both backends")
		metrics     = flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")
		stageLabels = flag.Bool("stage-labels", false, "tag pipeline stages with runtime/pprof labels (cbm_stage=...)")
		plan        = flag.String("plan", "", "process-wide plan mode for MulTo: auto, heuristic, two-stage, fused or csr (default auto; also CBM_PLAN)")
		doReorder   = flag.String("reorder", "", "run the CBM backend on the reordered graph: minhash or rcm (features gathered / outputs scattered transparently)")
		window      = flag.Int("window", 0, "CBM candidate band |x−y| ≤ window (0 = exact); pairs with -reorder")
		shards      = flag.Int("shards", 0, "serve the CBM side through the row-partitioned sharded backend (0/1 = unsharded)")
		shardOrder  = flag.String("shard-order", "", "row ordering before the shard cut: natural (default), minhash or rcm")
	)
	flag.Parse()
	if *stageLabels {
		obs.EnableProfiling()
	}
	if *plan != "" {
		pm, err := cbm.ParsePlanMode(*plan)
		if err != nil {
			fatal(err)
		}
		cbm.SetPlanMode(pm)
	}

	d, err := bench.Get(*dataset)
	if err != nil {
		fatal(err)
	}
	a := d.Generate(*seed)
	outf("graph: %s (%d nodes, %d edges)\n", d.Name, a.Rows, a.NNZ())

	csrBackend, err := gnn.NewCSRBackend(a)
	if err != nil {
		fatal(err)
	}
	copt := cbm.Options{Alpha: *alpha, Threads: *threads, Window: *window}
	var (
		cbmAdj     gnn.Adjacency     // what we time: raw, permutation-wrapped or sharded
		cbmBackend *gnn.CBMAdjacency // nil in sharded mode
	)
	if *shards > 1 {
		sb, err := gnn.NewShardedCBMBackend(a, shard.Options{Shards: *shards, CBM: copt, ColsHint: *cols}, *shardOrder)
		if err != nil {
			fatal(err)
		}
		cbmAdj = sb.Backend
		halo := 0
		for _, h := range sb.Stats.HaloNNZ {
			halo += h
		}
		outf("shards: %d (order %q, halo nnz %d, imbalance %d‰)\n",
			sb.Stats.Shards, shardOrderLabel(*shardOrder), halo, sb.Stats.ImbalancePermille)
	} else if *doReorder != "" {
		strat, err := reorder.ParseStrategy(*doReorder)
		if err != nil {
			fatal(err)
		}
		re, bs, rs, err := gnn.NewReorderedCBMBackend(a, copt, reorder.Options{Threads: *threads, Strategy: strat})
		if err != nil {
			fatal(err)
		}
		cbmAdj, cbmBackend = re, re.Inner.(*gnn.CBMAdjacency)
		outf("reorder (%s): %d buckets, largest %d\n", strat, rs.Buckets, rs.LargestBucket)
		printBuild(a, cbmBackend, bs)
	} else {
		b, bs, err := gnn.NewCBMBackend(a, copt)
		if err != nil {
			fatal(err)
		}
		cbmAdj, cbmBackend = b, b
		printBuild(a, cbmBackend, bs)
	}
	outf("Â footprint: CSR %s MiB, CBM %s MiB\n",
		bench.MiB(csrBackend.FootprintBytes()), bench.MiB(cbmAdj.FootprintBytes()))

	rng := xrand.New(*seed + 11)
	x := dense.New(a.Rows, *cols)
	rng.FillUniform(x.Data)
	model := gnn.NewGCN2(*cols, *cols, *cols, *seed+7)

	th := *threads
	if cbmBackend != nil {
		outf("plan selector: mode=%s, chosen=%s (threads=%d cols=%d)\n",
			cbm.CurrentPlanMode(), cbmBackend.M.PlanFor(th, *cols), th, *cols)
	}
	tCSR := bench.Measure(*reps, 1, func() { model.Infer(csrBackend, x, th) })
	// Stage deltas around the CBM measurement expose which execution
	// plan MulTo's cost model picked (fused single-pass vs two-stage).
	fc0, fn0 := obs.StageTotals(obs.StageFused)
	uc0, un0 := obs.StageTotals(obs.StageUpdate)
	tCBM := bench.Measure(*reps, 1, func() { model.Infer(cbmAdj, x, th) })
	fc1, fn1 := obs.StageTotals(obs.StageFused)
	uc1, un1 := obs.StageTotals(obs.StageUpdate)
	outf("inference CSR: %s s\n", tCSR)
	outf("inference CBM: %s s\n", tCBM)
	outf("CBM plan: fused ×%d (%.4fs), two-stage ×%d (update %.4fs)\n",
		fc1-fc0, float64(fn1-fn0)/1e9, uc1-uc0, float64(un1-un0)/1e9)
	outf("speedup:       %.2f×\n", tCSR.Seconds()/tCBM.Seconds())

	// Correctness cross-check, the paper's 1e-5 criterion.
	z1 := model.Infer(csrBackend, x, th)
	z2 := model.Infer(cbmAdj, x, th)
	outf("max rel diff CSR vs CBM: %.2e\n", dense.MaxRelDiff(z1, z2, 1))

	if *train {
		labels := make([]int, a.Rows)
		for i := range labels {
			labels[i] = i % 4
		}
		small := gnn.NewGCN2(*cols, 32, 4, *seed+9)
		cfg := gnn.TrainConfig{LR: 0.2, Epochs: 10, Threads: th}
		tTrainCSR := bench.Measure(1, 0, func() { small.Train(csrBackend, x, labels, nil, cfg) })
		tTrainCBM := bench.Measure(1, 0, func() { small.Train(cbmAdj, x, labels, nil, cfg) })
		outf("train 10 epochs CSR: %s s\n", tTrainCSR)
		outf("train 10 epochs CBM: %s s  (%.2f×)\n",
			tTrainCBM, tTrainCSR.Seconds()/tTrainCBM.Seconds())
	}

	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// printBuild reports the CBM compression shape (unsharded modes; the
// sharded backend reports its partition line instead).
func printBuild(a *sparse.CSR, b *gnn.CBMAdjacency, stats cbm.BuildStats) {
	outf("CBM build: %v (deltas/nnz = %.3f, %d branches)\n",
		stats.Total(),
		float64(b.M.NumDeltas())/float64(b.M.Delta().Rows+a.NNZ()),
		b.M.NumBranches())
}

func shardOrderLabel(order string) string {
	if order == "" {
		return "natural"
	}
	return order
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "gcninfer:", err)
	os.Exit(1)
}

// outf writes a formatted line to stdout and exits non-zero if the
// write fails, so a broken pipe cannot silently truncate the report.
func outf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "gcninfer: write:", err)
		os.Exit(1)
	}
}
