// Command graphgen emits synthetic graphs as edge-list files, either a
// registered dataset analog or a raw generator with explicit
// parameters. The output feeds cbmcompress -in or external tooling.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "registered dataset analog (see cbmbench -list)")
		model   = flag.String("model", "", "raw generator: er | ws | hk | sbm | hub | copy")
		n       = flag.Int("n", 1000, "node count (raw generators)")
		deg     = flag.Float64("deg", 8, "target average degree (er)")
		k       = flag.Int("k", 6, "lattice degree (ws) / attachments (hk, copy)")
		p       = flag.Float64("p", 0.3, "model probability (ws rewiring, hk triads, sbm in-prob, hub copy-prob, copy beta)")
		group   = flag.Int("group", 30, "group size (sbm) / regulars per block (hub)")
		hubs    = flag.Int("hubs", 50, "hubs per block (hub)")
		noise   = flag.Float64("noise", 0.5, "noise degree (sbm, hub)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "edgelist", "output format: edgelist | mtx (MatrixMarket)")
		metrics = flag.Bool("metrics", false, "dump the internal/obs metrics snapshot as JSON to stderr on exit")
	)
	flag.Parse()

	var a *sparse.CSR
	switch {
	case *dataset != "":
		d, err := bench.Get(*dataset)
		if err != nil {
			fatal(err)
		}
		a = d.Generate(*seed)
	case *model != "":
		switch *model {
		case "er":
			a = synth.ErdosRenyi(*n, *deg, *seed)
		case "ws":
			a = synth.WattsStrogatz(*n, *k, *p, *seed)
		case "hk":
			a = synth.HolmeKim(*n, *k, *p, *seed)
		case "sbm":
			a = synth.SBMGroups(*n, *group, *p, *noise, *seed)
		case "hub":
			a = synth.HubTemplate(*n, *group, *hubs, *p, 0.05, *noise, *seed)
		case "copy":
			a = synth.Copying(*n, *k, *p, *seed)
		default:
			fatal(fmt.Errorf("unknown -model %q", *model))
		}
	default:
		fatal(fmt.Errorf("pass -dataset <name> or -model <er|ws|hk|sbm|hub|copy>"))
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = f
	}
	switch *format {
	case "edgelist":
		if err := sparse.WriteEdgeList(w, a); err != nil {
			fatal(err)
		}
	case "mtx":
		if err := sparse.WriteMatrixMarket(w, a); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -format %q", *format))
	}
	if f != nil {
		// Close errors matter here: the edge list may still be buffered.
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	_, _ = fmt.Fprintf(os.Stderr, "graphgen: %d nodes, %d directed entries (avg degree %.1f)\n",
		a.Rows, a.NNZ(), float64(a.NNZ())/float64(a.Rows))
	if *metrics {
		if err := obs.WriteJSON(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
