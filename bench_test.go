// Package repro's root benchmark harness: one testing.B family per
// table/figure of the paper, on reduced-size dataset analogs so
// `go test -bench=. -benchmem` completes in a laptop budget. The
// full-scale reproduction (paper-width operands, all eight analogs,
// mean ± σ formatting) lives in cmd/cbmbench.
//
//	Table I   → BenchmarkTable1Stats
//	Table II  → BenchmarkTable2Compress
//	Fig. 2    → BenchmarkFig2AX (α × {CSR, CBM} × {seq, par})
//	Table III → BenchmarkTable3ADX / BenchmarkTable3DADX
//	Table IV  → BenchmarkTable4GCN
//	Table V   → BenchmarkTable5Clustering
//	Ablations → BenchmarkUpdateStrategies, BenchmarkCompressPhases
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cbm"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/sparse"
	"repro/internal/staf"
	"repro/internal/synth"
	"repro/internal/xrand"
)

const benchCols = 32 // dense operand width for benches (paper: 500)

// benchDataset caches one reduced analog per family so graph
// generation and compression stay out of the timed loops.
type benchDataset struct {
	name string
	a    *sparse.CSR
	x    *dense.Matrix
	out  *dense.Matrix
	cbm0 *cbm.Matrix // α = 0
	cbm8 *cbm.Matrix // α = 8
	diag []float32
}

var (
	benchOnce sync.Once
	benchSets []*benchDataset
)

func benchData(b *testing.B) []*benchDataset {
	b.Helper()
	benchOnce.Do(func() {
		gens := []struct {
			name string
			gen  func() *sparse.CSR
		}{
			{"citation", func() *sparse.CSR { return synth.HolmeKim(4000, 2, 0.45, 1) }},
			{"coauthor", func() *sparse.CSR {
				return synth.SBMMixture(6000, []synth.SBMComponent{
					{Weight: 0.94, GroupSize: 24, InProb: 0.62},
					{Weight: 0.06, GroupSize: 130, InProb: 0.88},
				}, 1.0, 1)
			}},
			{"collab", func() *sparse.CSR {
				return synth.SBMMixture(8000, []synth.SBMComponent{
					{Weight: 0.45, GroupSize: 100, InProb: 0.96},
					{Weight: 0.30, GroupSize: 55, InProb: 0.95},
					{Weight: 0.25, GroupSize: 20, InProb: 0.95},
				}, 0.3, 1)
			}},
			{"protein", func() *sparse.CSR {
				return synth.HubTemplate(3900, 300, 350, 0.80, 0.10, 1.0, 1)
			}},
		}
		rng := xrand.New(99)
		for _, g := range gens {
			a := g.gen()
			d := &benchDataset{name: g.name, a: a}
			d.x = dense.New(a.Rows, benchCols)
			rng.FillUniform(d.x.Data)
			d.out = dense.New(a.Rows, benchCols)
			builder, err := cbm.NewBuilder(a, cbm.Options{})
			if err != nil {
				panic(err)
			}
			d.cbm0, _, err = builder.Compress(0, false)
			if err != nil {
				panic(err)
			}
			d.cbm8, _, err = builder.Compress(8, false)
			if err != nil {
				panic(err)
			}
			d.diag = make([]float32, a.Rows)
			for i := range d.diag {
				d.diag[i] = rng.Float32() + 0.5
			}
			benchSets = append(benchSets, d)
		}
	})
	return benchSets
}

// BenchmarkTable1Stats times the dataset summary statistics.
func BenchmarkTable1Stats(b *testing.B) {
	for _, d := range benchData(b) {
		b.Run(d.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = graph.Summarize(d.a)
			}
		})
	}
}

// BenchmarkTable2Compress times the full CBM build (candidates + tree
// + deltas) at the two α corners of Table II.
func BenchmarkTable2Compress(b *testing.B) {
	for _, d := range benchData(b) {
		for _, alpha := range []int{0, 32} {
			b.Run(fmt.Sprintf("%s/alpha=%d", d.name, alpha), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := cbm.Compress(d.a, cbm.Options{Alpha: alpha}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig2AX times AX with the CSR baseline and the CBM format
// at α ∈ {0, 8}, sequential and parallel — the measurements behind the
// Fig. 2 sweep.
func BenchmarkFig2AX(b *testing.B) {
	for _, d := range benchData(b) {
		b.Run(d.name+"/CSR/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.SpMMTo(d.out, d.a, d.x, 1)
			}
		})
		b.Run(d.name+"/CSR/par", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.SpMMTo(d.out, d.a, d.x, 0)
			}
		})
		for _, v := range []struct {
			tag string
			m   *cbm.Matrix
		}{{"alpha=0", d.cbm0}, {"alpha=8", d.cbm8}} {
			b.Run(d.name+"/CBM/"+v.tag+"/seq", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					v.m.MulTo(d.out, d.x, 1)
				}
			})
			b.Run(d.name+"/CBM/"+v.tag+"/par", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					v.m.MulTo(d.out, d.x, 0)
				}
			})
		}
	}
}

// BenchmarkTable3ADX times the column-scaled product.
func BenchmarkTable3ADX(b *testing.B) {
	for _, d := range benchData(b) {
		csr := d.a.ScaleCols(d.diag)
		ad := d.cbm8.WithColumnScale(d.diag)
		b.Run(d.name+"/CSR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.SpMMTo(d.out, csr, d.x, 1)
			}
		})
		b.Run(d.name+"/CBM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ad.MulTo(d.out, d.x, 1)
			}
		})
	}
}

// BenchmarkTable3DADX times the symmetrically scaled product.
func BenchmarkTable3DADX(b *testing.B) {
	for _, d := range benchData(b) {
		csr := d.a.ScaleCols(d.diag).ScaleRows(d.diag)
		dad := d.cbm8.WithSymmetricScale(d.diag)
		b.Run(d.name+"/CSR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.SpMMTo(d.out, csr, d.x, 1)
			}
		})
		b.Run(d.name+"/CBM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dad.MulTo(d.out, d.x, 1)
			}
		})
	}
}

// BenchmarkTable4GCN times two-layer GCN inference on both backends.
func BenchmarkTable4GCN(b *testing.B) {
	for _, d := range benchData(b) {
		na, err := graph.NewNormalizedAdjacency(d.a)
		if err != nil {
			b.Fatal(err)
		}
		csrBackend := &gnn.CSRAdjacency{M: na.Materialize()}
		base, _, err := cbm.Compress(na.Binary, cbm.Options{Alpha: 8})
		if err != nil {
			b.Fatal(err)
		}
		cbmBackend := &gnn.CBMAdjacency{M: base.WithSymmetricScale(na.Diag)}
		model := gnn.NewGCN2(benchCols, benchCols, benchCols, 42)
		b.Run(d.name+"/CSR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.Infer(csrBackend, d.x, 1)
			}
		})
		b.Run(d.name+"/CBM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.Infer(cbmBackend, d.x, 1)
			}
		})
	}
}

// BenchmarkTable5Clustering times the exact average clustering
// coefficient computation.
func BenchmarkTable5Clustering(b *testing.B) {
	for _, d := range benchData(b) {
		b.Run(d.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = graph.AverageClusteringCoefficient(d.a, 0)
			}
		})
	}
}

// BenchmarkUpdateStrategies is the DESIGN.md ablation: branch-only vs
// branch×column-block scheduling of the parallel update stage.
func BenchmarkUpdateStrategies(b *testing.B) {
	for _, d := range benchData(b) {
		b.Run(d.name+"/branch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.cbm0.MulToStrategy(d.out, d.x, 0, cbm.StrategyBranch, 0)
			}
		})
		b.Run(d.name+"/branch-column", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.cbm0.MulToStrategy(d.out, d.x, 0, cbm.StrategyBranchColumn, 16)
			}
		})
	}
}

// BenchmarkCompressPhases isolates the candidate-graph phase (the AAᵀ
// work dominating compression, per Sec. VIII's memory discussion) from
// the per-α tree rebuild, demonstrating the Builder amortization.
func BenchmarkCompressPhases(b *testing.B) {
	for _, d := range benchData(b) {
		b.Run(d.name+"/candidates", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cbm.NewBuilder(d.a, cbm.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		builder, err := cbm.NewBuilder(d.a, cbm.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(d.name+"/tree+deltas", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := builder.Compress(8, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGCNTrainingEpoch times one full-batch training epoch on
// both backends (the paper's future-work extension).
func BenchmarkGCNTrainingEpoch(b *testing.B) {
	d := benchData(b)[2] // collab regime: biggest CBM win
	labels := make([]int, d.a.Rows)
	for i := range labels {
		labels[i] = i % 4
	}
	na, err := graph.NewNormalizedAdjacency(d.a)
	if err != nil {
		b.Fatal(err)
	}
	csrBackend := &gnn.CSRAdjacency{M: na.Materialize()}
	base, _, err := cbm.Compress(na.Binary, cbm.Options{Alpha: 8})
	if err != nil {
		b.Fatal(err)
	}
	cbmBackend := &gnn.CBMAdjacency{M: base.WithSymmetricScale(na.Diag)}
	cfg := gnn.TrainConfig{LR: 0.1, Epochs: 1, Threads: 1}
	b.Run("CSR", func(b *testing.B) {
		model := gnn.NewGCN2(benchCols, 16, 4, 7)
		for i := 0; i < b.N; i++ {
			model.Train(csrBackend, d.x, labels, nil, cfg)
		}
	})
	b.Run("CBM", func(b *testing.B) {
		model := gnn.NewGCN2(benchCols, 16, 4, 7)
		for i := 0; i < b.N; i++ {
			model.Train(cbmBackend, d.x, labels, nil, cfg)
		}
	})
}

// BenchmarkFormats compares the three formats (CSR baseline, the STAF
// suffix trie of Sec. VII's related work, and CBM) on one AX product
// per structural regime.
func BenchmarkFormats(b *testing.B) {
	for _, d := range benchData(b) {
		forest, err := staf.Build(d.a)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(d.name+"/CSR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.SpMMTo(d.out, d.a, d.x, 1)
			}
		})
		b.Run(d.name+"/STAF", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				forest.MulTo(d.out, d.x, 1)
			}
		})
		b.Run(d.name+"/CBM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.cbm0.MulTo(d.out, d.x, 1)
			}
		})
	}
}

// BenchmarkSpMMScheduling compares row-dynamic scheduling against
// nnz-balanced segment scheduling (kernels.SpMMBalanced) on the
// protein regime, whose hub rows are the worst case for row dealing.
func BenchmarkSpMMScheduling(b *testing.B) {
	d := benchData(b)[3] // protein regime
	b.Run("row-dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.SpMMTo(d.out, d.a, d.x, 0)
		}
	})
	b.Run("nnz-balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.SpMMBalanced(d.out, d.a, d.x, 0)
		}
	})
}
