// GCN inference on a co-papers-style synthetic graph: build the
// normalized adjacency Â = D^{-1/2}(A+I)D^{-1/2}, run the paper's
// two-layer GCN (Eq. 1) on the CSR and CBM backends, verify agreement,
// and report the speedup — a single-graph rendition of Table IV.
//
//	go run ./examples/gcn
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/synth"
	"repro/internal/xrand"
)

func main() {
	// A scaled-down co-papers regime: tight communities of mixed size.
	a := synth.SBMMixture(8000, []synth.SBMComponent{
		{Weight: 0.5, GroupSize: 90, InProb: 0.94},
		{Weight: 0.5, GroupSize: 25, InProb: 0.93},
	}, 0.4, 7)
	fmt.Printf("graph: %d nodes, %d edges, avg degree %.1f\n",
		a.Rows, a.NNZ()/2, float64(a.NNZ())/float64(a.Rows))

	csrBackend, err := core.NewCSRBackend(a)
	if err != nil {
		log.Fatal(err)
	}
	cbmBackend, stats, err := core.NewCBMBackend(a, core.Options{Alpha: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CBM build: %v, Â footprint CSR %s MiB vs CBM %s MiB\n",
		stats.Total(),
		bench.MiB(csrBackend.FootprintBytes()),
		bench.MiB(cbmBackend.FootprintBytes()))

	const features, hidden, classes = 128, 128, 128 // paper: 500/500/500
	rng := xrand.New(1)
	x := dense.New(a.Rows, features)
	rng.FillUniform(x.Data)
	model := gnn.NewGCN2(features, hidden, classes, 42)

	// Correctness first (the paper's 1e-5 relative-tolerance check).
	z1 := model.Infer(csrBackend, x, 0)
	z2 := model.Infer(cbmBackend, x, 0)
	fmt.Printf("max relative difference CSR vs CBM: %.2e\n", dense.MaxRelDiff(z1, z2, 1))

	// Then timing.
	tCSR := bench.Measure(5, 1, func() { model.Infer(csrBackend, x, 0) })
	tCBM := bench.Measure(5, 1, func() { model.Infer(cbmBackend, x, 0) })
	fmt.Printf("inference: CSR %s s, CBM %s s → speedup %.2f×\n",
		tCSR, tCBM, tCSR.Seconds()/tCBM.Seconds())
}
