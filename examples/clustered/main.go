// Scalable compression via MinHash clustering — the paper's final-
// remarks strategy for graphs whose exact candidate pass (AAᵀ) would
// exhaust memory (the paper measured 92 GiB for Reddit). Rows are
// clustered by neighbourhood MinHash and compression candidates stay
// within clusters, trading a little compression for a hard bound on
// candidate memory.
//
//	go run ./examples/clustered
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/synth"
	"repro/internal/xrand"
)

func main() {
	// A dense-ish community graph where the exact pass has a large
	// candidate set.
	a := synth.SBMMixture(20000, []synth.SBMComponent{
		{Weight: 0.6, GroupSize: 80, InProb: 0.93},
		{Weight: 0.4, GroupSize: 30, InProb: 0.90},
	}, 0.5, 13)
	fmt.Printf("graph: %d nodes, %d edges\n\n", a.Rows, a.NNZ()/2)

	// Exact compression.
	start := time.Now()
	exact, exactStats, err := core.Compress(a, core.Options{Alpha: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact:     %8d candidate edges, ratio %.2f×, %v\n",
		exactStats.CandidateEdges,
		float64(a.FootprintBytes())/float64(exact.FootprintBytes()),
		time.Since(start).Round(time.Millisecond))

	// Clustered compression at increasing cluster purity.
	for _, hashes := range []int{1, 2, 4} {
		start = time.Now()
		m, _, cstats, err := core.CompressClustered(a,
			core.Options{Alpha: 0}, core.ClusterOptions{Hashes: hashes, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hashes=%d:  %8d candidate edges (%d clusters, largest %d), ratio %.2f×, %v\n",
			hashes, cstats.CandidateEdges, cstats.Clusters, cstats.LargestCluster,
			float64(a.FootprintBytes())/float64(m.FootprintBytes()),
			time.Since(start).Round(time.Millisecond))
	}

	// The clustered result is a perfectly ordinary CBM matrix.
	m, _, _, err := core.CompressClustered(a, core.Options{Alpha: 0}, core.ClusterOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	rng := xrand.New(2)
	x := dense.New(a.Rows, 32)
	rng.FillUniform(x.Data)
	got := m.MulParallel(x, 0)
	want := kernels.SpMMParallel(a, x, 0)
	fmt.Printf("\nproduct check vs CSR: max rel diff %.2e\n", dense.MaxRelDiff(got, want, 1))
}
