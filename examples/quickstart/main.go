// Quickstart: compress a small binary matrix into the CBM format,
// inspect its compression tree and delta matrix (the objects of the
// paper's Fig. 1), multiply it with a dense matrix, and verify the
// result against the CSR baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cbm"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/sparse"
)

func main() {
	// A small binary matrix whose rows resemble each other — the
	// situation Fig. 1 of the paper illustrates. Row 1 is row 0 plus
	// one column; row 2 is row 0 minus one column; and so on.
	adj := [][]int32{
		{0, 1, 2, 3},
		{0, 1, 2, 3, 4},
		{1, 2, 3},
		{0, 1, 2, 3, 4, 5},
		{2, 3},
		{0, 5},
		{0, 5, 6},
		{5, 6},
	}
	a := sparse.FromAdjacency(8, 8, adj)
	fmt.Printf("input: %d×%d binary matrix, nnz = %d\n", a.Rows, a.Cols, a.NNZ())

	m, stats, err := core.Compress(a, core.Options{Alpha: 0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompression tree (parent −1 = virtual root):\n")
	for x := 0; x < m.Rows(); x++ {
		dcols, dvals := m.Delta().Row(x)
		fmt.Printf("  row %d ← parent %2d   deltas:", x, m.Parent(x))
		for k, c := range dcols {
			sign := "+"
			if dvals[k] < 0 {
				sign = "-"
			}
			fmt.Printf(" %s%d", sign, c)
		}
		fmt.Println()
	}
	fmt.Printf("\ntotal deltas: %d (vs nnz %d — Property 1: deltas ≤ nnz)\n",
		m.NumDeltas(), a.NNZ())
	fmt.Printf("tree: %d real edges, %d virtual-root children, depth %d\n",
		stats.TreeEdges, stats.VirtualKids, stats.Depth)

	// Multiply with a dense matrix and compare against CSR SpMM.
	b := dense.FromRows([][]float32{
		{1, 0}, {0, 1}, {1, 1}, {2, 0}, {0, 2}, {1, 2}, {2, 1}, {1, 1},
	})
	got := m.Mul(b)
	want := kernels.SpMM(a, b)
	fmt.Printf("\nC = A·B  (max abs diff vs CSR: %g)\n", dense.MaxAbsDiff(got, want))
	for i := 0; i < got.Rows; i++ {
		fmt.Printf("  %v\n", got.Row(i))
	}

	// The same matrix as DAD — how GCNs consume adjacency matrices.
	d := make([]float32, a.Rows)
	for i := range d {
		d[i] = 1 / float32(i+1)
	}
	dad := m.WithSymmetricScale(d)
	_ = dad.Mul(b)
	fmt.Printf("\nDAD variant: kind=%v, footprint %d bytes (CSR: %d bytes)\n",
		dad.Kind(), dad.FootprintBytes(), a.FootprintBytes())

	_ = cbm.KindDAD // keep the direct package import illustrative
}
