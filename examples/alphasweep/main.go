// Alpha tuning: sweep the edge-pruning threshold α over one graph and
// print the compression/speed frontier, the per-graph version of the
// paper's Fig. 2. The candidate graph is computed once via the Builder
// API; each α costs only a tree + delta rebuild.
//
//	go run ./examples/alphasweep
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/synth"
	"repro/internal/xrand"
)

func main() {
	// Co-authorship regime: small tight groups plus a few large
	// collaborations, so α actually changes the tree.
	a := synth.SBMMixture(10000, []synth.SBMComponent{
		{Weight: 0.92, GroupSize: 16, InProb: 0.75},
		{Weight: 0.08, GroupSize: 150, InProb: 0.90},
	}, 0.5, 3)
	fmt.Printf("graph: %d nodes, %d edges\n", a.Rows, a.NNZ()/2)

	builder, err := core.NewBuilder(a, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	rng := xrand.New(9)
	b := dense.New(a.Rows, 64)
	rng.FillUniform(b.Data)
	c := dense.New(a.Rows, 64)
	tCSR := bench.Measure(5, 1, func() { kernels.SpMMTo(c, a, b, 1) })
	fmt.Printf("CSR SpMM baseline: %s s\n\n", tCSR)

	fmt.Printf("%5s  %8s  %8s  %10s  %10s  %9s\n",
		"alpha", "ratio", "speedup", "deltas/nnz", "rootKids", "modeled16")
	bestAlpha, bestSpeedup := 0, 0.0
	for _, alpha := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		m, stats, err := builder.Compress(alpha, false)
		if err != nil {
			log.Fatal(err)
		}
		tCBM := bench.Measure(5, 1, func() { m.MulTo(c, b, 1) })
		speedup := tCSR.Seconds() / tCBM.Seconds()
		if speedup > bestSpeedup {
			bestSpeedup, bestAlpha = speedup, alpha
		}
		fmt.Printf("%5d  %8.2f  %8.2f  %10.3f  %10d  %9.2f\n",
			alpha,
			float64(a.FootprintBytes())/float64(m.FootprintBytes()),
			speedup,
			float64(m.NumDeltas())/float64(a.NNZ()),
			stats.VirtualKids,
			costmodel.ModeledSpeedup(a, m.Shape(), 64, 16),
		)
	}
	fmt.Printf("\nbest sequential α for this graph: %d (%.2f×)\n", bestAlpha, bestSpeedup)
}
