// Graph classification — Sec. II's remaining GNN task. Many small
// graphs of two structural classes (tight communities vs random) are
// batched into one block-diagonal adjacency, so the whole batch runs
// through a single Â product per layer; a mean readout pools node
// embeddings per graph and a linear head classifies. The batched
// adjacency is itself a (large, binary) sparse matrix, so the whole
// pipeline runs unchanged on either backend; how much CBM wins depends
// on the *within-graph* row similarity of the batch members (blocks
// never share columns, so compression happens inside each block).
//
//	go run ./examples/graphclass
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cbm"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/sparse"
	"repro/internal/synth"
	"repro/internal/xrand"
)

const (
	graphsPerClass = 60
	minNodes       = 40
	maxNodes       = 80
	feats          = 16
	hidden         = 16
)

func main() {
	rng := xrand.New(3)

	// Build the batch: class 0 = clustered (SBM), class 1 = random (ER)
	// with matched sizes and degrees, so structure — not size — is the
	// signal.
	var blocks []*sparse.CSR
	var labels []int
	for i := 0; i < graphsPerClass; i++ {
		n := minNodes + rng.Intn(maxNodes-minNodes)
		blocks = append(blocks, synth.SBMGroups(n, 10, 0.8, 0.5, rng.Uint64()))
		labels = append(labels, 0)
		blocks = append(blocks, synth.ErdosRenyi(n, 8, rng.Uint64()))
		labels = append(labels, 1)
	}
	batched, offsets := sparse.BlockDiag(blocks...)
	fmt.Printf("batch: %d graphs, %d total nodes, %d edges\n",
		len(blocks), batched.Rows, batched.NNZ()/2)

	// Node features: degree plus the local clustering coefficient —
	// triangles are what separates the classes (degrees are matched by
	// construction).
	local := graph.LocalClusteringCoefficients(batched, 0)
	x := dense.New(batched.Rows, feats)
	for i := 0; i < batched.Rows; i++ {
		x.Set(i, 0, float32(batched.RowNNZ(i))/10)
		x.Set(i, 1, float32(local[i]))
		for j := 2; j < feats; j++ {
			x.Set(i, j, rng.Float32()*0.1)
		}
	}
	cc := graph.AverageClusteringCoefficient(batched, 0)
	fmt.Printf("batched clustering coefficient: %.2f\n", cc)

	run := func(name string, backend core.Adjacency) {
		enc := gnn.NewGCN2(feats, hidden, hidden, 11)
		head := gnn.NewLinear(hidden, 2, true, xrand.New(12))
		opt := gnn.NewAdam(0.1)
		start := time.Now()
		var loss float64
		for epoch := 0; epoch < 120; epoch++ {
			z := enc.Infer(backend, x, 0)         // node embeddings
			pooled := gnn.MeanReadout(z, offsets) // one row per graph
			logits := head.Forward(pooled, 0)     // graph logits
			grad := dense.New(logits.Rows, logits.Cols)
			loss = gnn.SoftmaxCrossEntropy(logits, labels, nil, grad)
			// head-only gradient step (encoder fixed): enough signal
			// for this structural task and keeps the example compact
			dw := dense.MulParallel(pooled.Transpose(), grad, 0)
			opt.BeginStep()
			opt.Step(head.W, dw)
		}
		elapsed := time.Since(start)
		z := enc.Infer(backend, x, 0)
		logits := head.Forward(gnn.MeanReadout(z, offsets), 0)
		fmt.Printf("%-4s  %7v   loss %.3f   accuracy %.3f\n",
			name, elapsed.Round(time.Millisecond), loss, gnn.Accuracy(logits, labels, nil))
	}

	csrBackend, err := core.NewCSRBackend(batched)
	if err != nil {
		log.Fatal(err)
	}
	cbmBackend, stats, err := core.NewCBMBackend(batched, cbm.Options{Alpha: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CBM build %v, deltas/nnz %.3f\n\n",
		stats.Total(), float64(stats.TreeWeight)/float64(batched.NNZ()+batched.Rows))
	run("CSR", csrBackend)
	run("CBM", cbmBackend)
}
