// Link prediction — the third GNN task Sec. II of the paper names
// (besides node- and graph-classification). A two-layer GCN encoder
// produces node embeddings; edges are scored by the embedding dot
// product; training maximizes scores of held-out true edges against
// random negative pairs. Every epoch runs two Â multiplications
// through the pluggable backend, so the CBM format accelerates link
// prediction exactly as it does classification.
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/sparse"
	"repro/internal/synth"
	"repro/internal/xrand"
)

const (
	nodes   = 3000
	group   = 30
	feats   = 32
	embed   = 16
	epochs  = 25
	lr      = 0.05
	holdout = 600 // positive edges hidden from the graph and used as labels
)

func main() {
	full := synth.SBMGroups(nodes, group, 0.85, 0.5, 21)
	train, testPos := splitEdges(full, holdout, 7)
	rng := xrand.New(9)
	testNeg := samplePairs(full, holdout, rng)

	x := dense.New(nodes, feats)
	rng.FillUniform(x.Data)

	run := func(name string, backend core.Adjacency) {
		enc := gnn.NewGCN2(feats, embed, embed, 17)
		opt := gnn.NewAdam(lr)
		start := time.Now()
		for epoch := 0; epoch < epochs; epoch++ {
			trainEpoch(enc, backend, x, testPos, testNeg, opt, rng)
		}
		elapsed := time.Since(start)
		z := enc.Infer(backend, x, 0)
		fmt.Printf("%-4s  %7v   AUC %.3f\n", name, elapsed.Round(time.Millisecond), auc(z, testPos, testNeg))
	}

	csrBackend, err := core.NewCSRBackend(train)
	if err != nil {
		log.Fatal(err)
	}
	cbmBackend, stats, err := core.NewCBMBackend(train, core.Options{Alpha: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d training edges, %d held-out positives; CBM build %v\n\n",
		nodes, train.NNZ()/2, holdout, stats.Total())
	run("CSR", csrBackend)
	run("CBM", cbmBackend)
}

// trainEpoch runs one step of gradient ascent on the dot-product
// logistic loss over the held-out positives and sampled negatives.
// The encoder gradient is approximated by treating the embeddings as
// the trainable output of the last GCN layer (gradient flows through
// the second Â product only — enough to exercise the backend while
// keeping the example compact).
func trainEpoch(enc *gnn.GCN2, backend core.Adjacency, x *dense.Matrix,
	pos, neg [][2]int32, opt *gnn.Adam, rng *xrand.RNG) {
	z := enc.Infer(backend, x, 0)
	grad := dense.New(z.Rows, z.Cols)
	addPairGrads(grad, z, pos, 1)
	addPairGrads(grad, z, neg, 0)
	// Backprop the embedding gradient through Â and the second linear
	// layer: dW1 = H1ᵀ·(Â·dZ), with H1 recomputed.
	h1 := enc.L0.Forward(backend, x, 0).ReLU()
	dz := dense.New(z.Rows, z.Cols)
	backend.MulTo(dz, grad, 0)
	dw1 := dense.MulParallel(h1.Transpose(), dz, 0)
	opt.BeginStep()
	opt.Step(enc.L1.Lin.W, dw1)
}

// addPairGrads accumulates d/dz of the logistic loss for edge pairs
// with the given label (1 = positive, 0 = negative).
func addPairGrads(grad, z *dense.Matrix, pairs [][2]int32, label float32) {
	for _, p := range pairs {
		u, v := int(p[0]), int(p[1])
		s := blas.Dot(z.Row(u), z.Row(v))
		pred := float32(1 / (1 + math.Exp(-float64(s))))
		coeff := (pred - label) / float32(len(pairs))
		blas.Axpy(coeff, z.Row(v), grad.Row(u))
		blas.Axpy(coeff, z.Row(u), grad.Row(v))
	}
}

// auc computes the probability a random positive pair outscores a
// random negative pair (exact over the two sets).
func auc(z *dense.Matrix, pos, neg [][2]int32) float64 {
	score := func(p [2]int32) float32 {
		return blas.Dot(z.Row(int(p[0])), z.Row(int(p[1])))
	}
	wins, ties := 0, 0
	for _, pp := range pos {
		sp := score(pp)
		for _, nn := range neg {
			sn := score(nn)
			switch {
			case sp > sn:
				wins++
			case sp == sn:
				ties++
			}
		}
	}
	total := len(pos) * len(neg)
	return (float64(wins) + 0.5*float64(ties)) / float64(total)
}

// splitEdges removes k undirected edges from the graph and returns the
// reduced adjacency plus the removed pairs.
func splitEdges(a *sparse.CSR, k int, seed uint64) (*sparse.CSR, [][2]int32) {
	rng := xrand.New(seed)
	type edge = [2]int32
	var all []edge
	for i := 0; i < a.Rows; i++ {
		for _, c := range a.RowCols(i) {
			if int(c) > i {
				all = append(all, edge{int32(i), c})
			}
		}
	}
	removed := map[edge]bool{}
	var testPos []edge
	for len(testPos) < k && len(testPos) < len(all) {
		e := all[rng.Intn(len(all))]
		if !removed[e] {
			removed[e] = true
			testPos = append(testPos, e)
		}
	}
	coo := sparse.NewCOO(a.Rows, a.Cols)
	for _, e := range all {
		if !removed[e] {
			coo.Append(int(e[0]), int(e[1]), 1)
			coo.Append(int(e[1]), int(e[0]), 1)
		}
	}
	out := coo.ToCSR()
	for i := range out.Vals {
		out.Vals[i] = 1
	}
	return out, testPos
}

// samplePairs draws k uniform non-adjacent, non-equal node pairs.
func samplePairs(a *sparse.CSR, k int, rng *xrand.RNG) [][2]int32 {
	var out [][2]int32
	for len(out) < k {
		u, v := rng.Intn(a.Rows), rng.Intn(a.Rows)
		if u == v {
			continue
		}
		adjacent := false
		for _, c := range a.RowCols(u) {
			if int(c) == v {
				adjacent = true
				break
			}
		}
		if !adjacent {
			out = append(out, [2]int32{int32(u), int32(v)})
		}
	}
	return out
}
