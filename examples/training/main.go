// GCN training with the CBM backend — the paper's stated future-work
// direction. A node-classification task is planted in an SBM graph
// (labels = community blocks); the two-layer GCN is trained full-batch
// on 10% labeled nodes with both adjacency backends. Every epoch runs
// two forward and two backward Â-multiplications, so the CBM format
// accelerates training end to end.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/synth"
	"repro/internal/xrand"
)

func main() {
	const (
		n       = 4000
		group   = 40
		classes = 5
		feats   = 32
	)
	a := synth.SBMGroups(n, group, 0.9, 1.0, 11)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = (i / group) % classes
	}
	// Features: noisy label one-hot — learnable but not trivial.
	rng := xrand.New(5)
	x := dense.New(n, feats)
	for i := 0; i < n; i++ {
		x.Set(i, labels[i], 1)
		for j := 0; j < feats; j++ {
			x.Set(i, j, x.At(i, j)+0.3*rng.Float32())
		}
	}
	// 10% of nodes supervised.
	mask := make([]bool, n)
	for i := 0; i < n; i += 10 {
		mask[i] = true
	}

	cfg := gnn.TrainConfig{LR: 0.4, Epochs: 30, Threads: 0}

	run := func(name string, backend core.Adjacency) {
		model := gnn.NewGCN2(feats, 32, classes, 17) // same seed → same init
		start := time.Now()
		res := model.Train(backend, x, labels, mask, cfg)
		elapsed := time.Since(start)
		// Accuracy on the *unlabeled* nodes (transductive evaluation).
		eval := make([]bool, n)
		for i := range eval {
			eval[i] = !mask[i]
		}
		z := model.Infer(backend, x, 0)
		fmt.Printf("%-4s  %v   loss %.3f → %.3f   unlabeled accuracy %.3f\n",
			name, elapsed.Round(time.Millisecond),
			res.Losses[0], res.Losses[len(res.Losses)-1],
			gnn.Accuracy(z, labels, eval))
	}

	csrBackend, err := core.NewCSRBackend(a)
	if err != nil {
		log.Fatal(err)
	}
	cbmBackend, stats, err := core.NewCBMBackend(a, core.Options{Alpha: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; CBM build %v, deltas/nnz %.3f\n\n",
		n, a.NNZ()/2, stats.Total(),
		float64(stats.TreeWeight)/float64(a.NNZ()+n))

	run("CSR", csrBackend)
	run("CBM", cbmBackend)
}
