#!/usr/bin/env bash
# CI gate: static checks, the full test suite, the race detector over
# the concurrency-heavy packages (including the oracle stress harness),
# and a differential-verification smoke sweep. Every PR is expected to
# pass `./ci.sh` locally before landing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrency-heavy packages)"
go test -race ./internal/cbm/... ./internal/parallel/... ./internal/kernels/... ./internal/oracle/...

echo "==> cmd/verify smoke sweep"
go run ./cmd/verify -n 64 -sweep quick

echo "ci: OK"
