#!/usr/bin/env bash
# CI gate: static checks, the full test suite, the race detector over
# the concurrency-heavy packages (including the oracle stress harness),
# and a differential-verification smoke sweep. Every PR is expected to
# pass `./ci.sh` locally before landing.
set -euo pipefail
cd "$(dirname "$0")"

# Package patterns shared by every static check, so vet and cbmlint can
# never drift apart in coverage.
PKGS="./..."

echo "==> gofmt"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "==> go vet $PKGS"
go vet "$PKGS"

echo "==> cbmlint $PKGS (all analyzers incl. arenalease/ctxprop/determinism, JSON report)"
# -json keeps the failure report stable and greppable; the report is
# printed on failure so CI logs carry file/line/analyzer/message.
if ! go run ./cmd/cbmlint -json "$PKGS" > cbmlint.report.json; then
    echo "cbmlint: diagnostics found:" >&2
    cat cbmlint.report.json >&2
    rm -f cbmlint.report.json
    exit 1
fi
rm -f cbmlint.report.json

echo "==> lint self-test (CFG + dataflow analyzers + golden fixtures)"
go test -count=1 ./internal/lint/...

echo "==> go build $PKGS"
go build "$PKGS"

echo "==> go test $PKGS"
go test "$PKGS"

echo "==> go test -race (concurrency-heavy packages)"
go test -race ./internal/cbm/... ./internal/parallel/... ./internal/kernels/... ./internal/oracle/... ./internal/obs/... ./internal/exec/... ./internal/gnn/... ./internal/clock/... ./internal/reorder/... ./internal/shard/...

echo "==> worker-pool stress (-race, reuse + nested submits + determinism)"
go test -race -count=1 -run 'TestPool' ./internal/parallel/

echo "==> engine race stress (-race, concurrent serving vs sequential reference)"
go test -race -count=1 -run 'TestEngine' ./internal/gnn/

echo "==> micro-batching smoke (-race, deterministic clock + batched bitwise equivalence)"
go test -race -count=1 -run 'TestBatcher|TestGatherScatter|TestEngineBatched' ./internal/gnn/

echo "==> zero-alloc smoke (arena + forward path + engine steady state, incl. sharded backend)"
go test -count=1 -run 'ZeroAlloc|TestArenaSteadyState|TestSAGEBatchAllocs' ./internal/exec/ ./internal/gnn/ ./internal/shard/

echo "==> shard stress (-race, concurrent sharded serving + lease pool)"
go test -race -count=1 -run 'TestEngineSharded|TestSharded|TestLease|TestProvisionScratch' ./internal/gnn/ ./internal/shard/

echo "==> shard oracle gate (sharded vs unsharded equivalence, shards {1,2,4,8} × threads {1,4})"
go test -count=1 -run 'TestCheckShardEquivalence' ./internal/oracle/

echo "==> cmd/verify smoke sweep"
go run ./cmd/verify -n 64 -sweep quick

echo "==> fused vs two-stage equivalence smoke"
go run ./cmd/verify -n 96 -gens hub,sbm -alphas 0,4 -threads 1,4,8 -stress 1

echo "==> cmd/gcnserve smoke (concurrent engine under load)"
go run ./cmd/gcnserve -dataset cora -cols 16 -classes 4 -concurrency 4 -requests 5 >/dev/null

echo "==> cmd/gcnserve batched smoke (micro-batched vs unbatched sweep)"
go run ./cmd/gcnserve -dataset cora -cols 16 -classes 4 -requests 3 \
    -batch -concurrencies 1,4 >/dev/null

echo "==> reorder smoke (banded ratio must strictly improve under minhash and rcm orders)"
go run ./cmd/cbmcompress -dataset cora -alpha 0 -window 64 -reorder=minhash -assert-reorder-gain >/dev/null
go run ./cmd/cbmcompress -dataset cora -alpha 0 -window 64 -reorder=rcm -assert-reorder-gain >/dev/null
go test -count=1 -run 'TestCheckPermutation|TestReordered|TestPermuteSymmetric|TestRCM' \
    ./internal/oracle/ ./internal/gnn/ ./internal/sparse/ ./internal/reorder/

echo "==> cmd/gcnserve sharded smoke (row-partitioned backend under concurrent load)"
go run ./cmd/gcnserve -dataset cora -cols 16 -classes 4 -concurrency 4 -requests 3 \
    -shards 4 -shard-order rcm >/dev/null

echo "==> cbmbench metrics smoke (BENCH_cbm.json)"
go run ./cmd/cbmbench -exp bench -datasets cora -cols 16 -reps 3 -warmup 1 \
    -bench-out BENCH_cbm.smoke.json -metrics >/dev/null
go run ./cmd/cbmbench -check-bench BENCH_cbm.smoke.json
rm -f BENCH_cbm.smoke.json

echo "==> calibrate sweep smoke (mini registry -> temp CALIBRATION.json)"
go run ./cmd/calibrate -plans -mini -datasets cora,collab -reps 3 -warmup 1 \
    -out CALIBRATION.smoke.json >/dev/null
rm -f CALIBRATION.smoke.json

echo "==> selector model staleness gate (committed CALIBRATION.json vs model_default.go)"
go run ./cmd/calibrate -check-model

echo "==> selector acceptance gate smoke (fresh mini measurements)"
go run ./cmd/calibrate -gate -mini -datasets cora,collab -reps 3 -warmup 1

echo "ci: OK"
